//! The simulator front end: runs a conv layer through the traced memory
//! hierarchy and reports measured traffic, miss rates, and cycles.
//!
//! Execution follows the paper's assumed schedule: CTA batches of
//! `num_sm × active_ctas` CTAs drain each tile column in order, running
//! their main loops in lockstep (§IV-C). Each batch is a self-contained
//! [`CtaBatch`] unit that runs the trace → coalesce → hierarchy → timing
//! stage pipeline ([`crate::stages`]); this module only sequences
//! batches and columns and extrapolates the steady state. For very tall
//! CTA grids the simulator can sample a prefix of each column's batches
//! and extrapolate the rest — per-batch traffic within a column is
//! stationary once the caches warm up — which keeps full-network sweeps
//! tractable (DESIGN.md §2). `SimConfig { max_batches_per_column: None,
//! .. }` disables sampling.

use crate::coalesce::Transaction;
use crate::hierarchy::{HierarchyStats, MemoryHierarchy, MergeableHierarchy};
use crate::interconnect::{Interconnect, InterconnectKind};
use crate::sched::ColumnScheduler;
use crate::shard::{ColumnSegment, ShardAxis, ShardPlan};
use crate::stages::{BatchLimits, BatchStats, CtaBatch, SteadyState};
use crate::tensor::TensorMap;
use crate::tensorcore::Datapath;
use crate::timing::TimingEngine;
use crate::topology::{Topology, TopologyKind};
use delta_model::backend::{Backend, EstimateSource, LayerEstimate};
use delta_model::query::{EvalQuery, Parallelism, Pass, StepEvaluation, StepQuery};
use delta_model::tiling::{CtaTile, LayerTiling};
use delta_model::{training, ConvLayer, Error, GpuSpec, BYTES_PER_ELEMENT};
use delta_obs::{span, Counter};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Simulation controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulate at most this many CTA batches per tile column and
    /// extrapolate the rest from the steady state; `None` simulates every
    /// CTA.
    pub max_batches_per_column: Option<u64>,
    /// Overrides the computed active-CTAs-per-SM occupancy.
    pub active_ctas_override: Option<u32>,
    /// Simulate the epilogue's OFmap stores (disable to skip the store
    /// address generation when only read traffic matters).
    pub simulate_stores: bool,
    /// Simulate at most this many main-loop iterations per batch and
    /// extrapolate the rest from the steady per-loop traffic (the K
    /// dimension advances to fresh data each loop, so per-loop traffic is
    /// stationary past warm-up); `None` simulates every loop.
    pub max_loops_per_batch: Option<u64>,
    /// Multiplies the CTA tile height/width by this power-of-two factor,
    /// mirroring `DeltaOptions::tile_scale` so the design-space study's
    /// 256-wide-tile options (Fig. 16a, 7–9) can be simulated too.
    /// `None`/1 keeps the Fig. 6 lookup.
    #[serde(default = "default_tile_scale")]
    pub tile_scale: Option<u32>,
    /// Partition the layer's tile columns over this many workers and
    /// simulate them in parallel ([`Simulator::run_sharded`]); the merged
    /// result is bitwise identical for every worker count. `None` keeps
    /// the sequential replay in which cache residency persists across
    /// tile columns.
    #[serde(default = "default_shards")]
    pub shards: Option<u32>,
    /// Which interconnect the direct multi-GPU convenience
    /// ([`Simulator::run_multi`]) charges cross-device traffic through.
    /// Query-driven evaluations carry their own interconnect
    /// (`Parallelism::Multi`); the CLI copies its `--interconnect` flag
    /// into both. [`InterconnectKind::Ideal`] (the default) charges
    /// nothing, making a G-device run bitwise identical to the
    /// single-device sharded run; single-device simulation ignores the
    /// field entirely.
    #[serde(default = "default_interconnect")]
    pub interconnect: InterconnectKind,
    /// Explicit interconnect topology graph
    /// ([`crate::topology::Topology`]): hop counts and contention
    /// *derive* the effective byte multiplier and bandwidth from the
    /// base fabric's per-hop parameters. `None` (the default) keeps the
    /// legacy scalar preset pricing — bitwise identical to the PR-3
    /// interconnect model.
    #[serde(default = "default_topology")]
    pub topology: Option<TopologyKind>,
    /// Gradient bucket size in MiB the CLI copies into its
    /// [`StepQuery`]s (the collective scheduler itself reads the query,
    /// not this field): backward-pass gradients pack into buckets of
    /// this size and each bucket all-reduces as one transfer. The
    /// default (25 MiB) mirrors DDP-style framework defaults.
    #[serde(default = "default_bucket_mb")]
    pub bucket_mb: u32,
    /// Overlap each gradient bucket's all-reduce with the remaining
    /// backward compute in scheduled step estimates. `false` (the
    /// default) keeps the serial schedule: all communication after all
    /// compute.
    #[serde(default = "default_overlap")]
    pub overlap: bool,
}

fn default_tile_scale() -> Option<u32> {
    None
}

fn default_shards() -> Option<u32> {
    None
}

fn default_interconnect() -> InterconnectKind {
    InterconnectKind::Ideal
}

fn default_topology() -> Option<TopologyKind> {
    None
}

fn default_bucket_mb() -> u32 {
    25
}

fn default_overlap() -> bool {
    false
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_batches_per_column: Some(4),
            active_ctas_override: None,
            simulate_stores: true,
            max_loops_per_batch: Some(32),
            tile_scale: None,
            shards: None,
            interconnect: InterconnectKind::Ideal,
            topology: None,
            bucket_mb: 25,
            overlap: false,
        }
    }
}

impl SimConfig {
    /// Full-fidelity configuration: no sampling.
    pub fn exhaustive() -> SimConfig {
        SimConfig {
            max_batches_per_column: None,
            max_loops_per_batch: None,
            ..SimConfig::default()
        }
    }
}

/// Measured quantities for one layer, in the units the paper's figures
/// use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// L1 traffic: requests × request size.
    pub l1_bytes: f64,
    /// L2 traffic: L1 sector misses × 32 B.
    pub l2_bytes: f64,
    /// DRAM read traffic: L2 sector misses × 32 B.
    pub dram_read_bytes: f64,
    /// DRAM write traffic (epilogue OFmap stores).
    pub dram_write_bytes: f64,
    /// Measured L1 sector miss rate (Fig. 4).
    pub l1_miss_rate: f64,
    /// Measured L2 sector miss rate (Fig. 4).
    pub l2_miss_rate: f64,
    /// Accounted execution cycles (busiest-path, core clocks).
    pub cycles: f64,
    /// Whether batch sampling/extrapolation was used.
    pub sampled: bool,
    /// CTAs actually traced.
    pub simulated_ctas: u64,
    /// CTAs in the full grid.
    pub total_ctas: u64,
    /// Active CTAs per SM used by the schedule.
    pub active_ctas: u32,
}

impl Measurement {
    /// Seconds at `gpu`'s clock.
    pub fn seconds(&self, gpu: &GpuSpec) -> f64 {
        gpu.clks_to_seconds(self.cycles)
    }

    /// Converts to the backend-neutral estimate type.
    pub fn to_estimate(&self, gpu: &GpuSpec) -> LayerEstimate {
        LayerEstimate {
            l1_bytes: self.l1_bytes,
            l2_bytes: self.l2_bytes,
            dram_read_bytes: self.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes,
            l1_miss_rate: self.l1_miss_rate,
            l2_miss_rate: self.l2_miss_rate,
            cycles: self.cycles,
            seconds: self.seconds(gpu),
            link_bytes: 0.0,
            bottleneck: None,
            source: EstimateSource::Simulation,
        }
    }
}

/// Trace-driven simulator bound to one GPU description.
#[derive(Debug, Clone)]
pub struct Simulator {
    gpu: GpuSpec,
    config: SimConfig,
    /// Full-layer replays performed (shared across clones): the
    /// expensive unit of work, counted so tests can assert that a step
    /// evaluation replays each unique shape exactly once. A
    /// [`delta_obs::Counter`] (shared atomics under the clone), so the
    /// same count the accessors read can be registered for scraping.
    replays: Counter,
}

impl Simulator {
    /// Creates a simulator for `gpu`.
    pub fn new(gpu: GpuSpec, config: SimConfig) -> Simulator {
        Simulator {
            gpu,
            config,
            replays: Counter::new(),
        }
    }

    /// How many full-layer replays (sequential, sharded, or per-device)
    /// this simulator has performed. Clones share the counter, so the
    /// count survives the engine's parallel fan-out.
    ///
    /// The unit is one *layer* replay regardless of how the work was
    /// partitioned internally: a row-sharded run that splits a column
    /// into sub-ranges (each with its private warm-up batch) still
    /// counts as exactly one replay, the same as the sequential and
    /// column-sharded paths — the counter answers "how many times was
    /// this layer simulated", not "how many worker tasks ran". A warm
    /// step-cache hit performs zero replays.
    pub fn replay_count(&self) -> u64 {
        self.replays.get()
    }

    /// A shared handle to the replay counter behind
    /// [`Simulator::replay_count`], for registration in a
    /// [`delta_obs::Registry`].
    pub fn replay_counter(&self) -> Counter {
        self.replays.clone()
    }

    /// The device being simulated.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The active configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// The CTA tiling the simulator will use for `layer` (Fig. 6 lookup
    /// plus any configured tile scaling).
    pub fn tiling(&self, layer: &ConvLayer) -> LayerTiling {
        LayerTiling::with_scale(layer, self.config.tile_scale)
    }

    /// The two partitioning axes [`ShardPlan::auto`] can split `layer`
    /// on: `(tile columns, simulated CTA batches per column)`. Their
    /// product is the row-axis work-unit count — the true ceiling on
    /// useful shard/device parallelism for this layer (the batch count
    /// reflects [`SimConfig::max_batches_per_column`] sampling, exactly
    /// as the sharded runner sees it).
    pub fn partition_units(&self, layer: &ConvLayer) -> (u64, u64) {
        let tiling = self.tiling(layer);
        let sched = ColumnScheduler::new(&tiling, &self.gpu, self.active_ctas(tiling.tile()));
        let batches = sched.batches_per_column();
        let sim_batches = self
            .config
            .max_batches_per_column
            .map_or(batches, |m| batches.min(m.max(1)));
        (sched.columns(), sim_batches)
    }

    /// The effective point-to-point fabric pricing for a `devices`-wide
    /// run under this simulator's configured interconnect/topology: the
    /// legacy scalar preset when [`SimConfig::topology`] is `None`
    /// (bitwise identical to PR 3), otherwise the parameters derived
    /// from the topology graph built for `devices`
    /// ([`Topology::price`]). Query-driven evaluations use
    /// [`fabric_of`] with the query's own kinds instead.
    pub fn fabric(&self, devices: u32) -> Interconnect {
        fabric_of(self.config.interconnect, self.config.topology, devices)
    }

    /// All-reduce pricing of `payload` logical bytes across `devices`
    /// under this simulator's configured interconnect/topology:
    /// `(link bytes, seconds)`. Query-driven evaluations use
    /// [`all_reduce_pricing_of`] with the query's own kinds instead.
    pub fn all_reduce_pricing(&self, payload: f64, devices: u32) -> (f64, f64) {
        all_reduce_pricing_of(
            self.config.interconnect,
            self.config.topology,
            payload,
            devices,
        )
    }

    /// The occupancy (active CTAs per SM) the schedule will use for
    /// `tile`.
    fn active_ctas(&self, tile: CtaTile) -> u32 {
        self.config
            .active_ctas_override
            .unwrap_or_else(|| tile.active_ctas_per_sm(&self.gpu))
            .max(1)
    }

    /// The batch-relevant slice of the configuration.
    fn batch_limits(&self) -> BatchLimits {
        BatchLimits {
            max_loops: self.config.max_loops_per_batch,
            simulate_stores: self.config.simulate_stores,
        }
    }

    /// Charges the one-per-layer prologue (later batches' prologues
    /// overlap their predecessors' main loops) to `timing`.
    fn charge_layer_prologue(&self, timing: &mut TimingEngine, tile: CtaTile) {
        timing.charge_prologue(
            f64::from(tile.blk_m() + tile.blk_n())
                * f64::from(tile.blk_k())
                * BYTES_PER_ELEMENT as f64,
        );
    }

    /// Runs `layer` through the memory hierarchy and returns the measured
    /// traffic and cycles. Dispatches on [`SimConfig::shards`]: `None`
    /// replays every tile column sequentially against one shared
    /// hierarchy; `Some(n)` fans the columns over `n` workers via
    /// [`Simulator::run_sharded`].
    pub fn run(&self, layer: &ConvLayer) -> Measurement {
        match self.config.shards {
            Some(n) => self.run_sharded(layer, n),
            None => self.run_sequential(layer),
        }
    }

    /// The sequential replay: one hierarchy, columns drained in order,
    /// cache residency persisting from each tile column to the next.
    /// Public so a fleet executor can answer a `Parallelism::Single`
    /// job with exactly the measurement the local path produces (the
    /// sequential replay is one indivisible work unit — residency makes
    /// its columns non-distributable).
    pub fn run_sequential(&self, layer: &ConvLayer) -> Measurement {
        let datapath = Datapath::select(&self.gpu, layer.kind());
        let _span = span!(
            "sim.replay",
            mode = "sequential",
            layer = layer.label(),
            datapath = datapath.label()
        );
        self.replays.inc();
        let tiling = self.tiling(layer);
        let tile = tiling.tile();
        let active = self.active_ctas(tile);
        let map = TensorMap::new(layer);
        let sched = ColumnScheduler::new(&tiling, &self.gpu, active);
        let mut hier = MemoryHierarchy::new(&self.gpu);
        let mut timing = TimingEngine::with_datapath(&self.gpu, tile, datapath);
        self.charge_layer_prologue(&mut timing, tile);

        let mut tx_buf = Vec::with_capacity(64);
        let mut simulated_ctas = 0u64;
        let mut measured = Totals::default();
        let mut extrapolated = Totals::default();
        let mut extra_cycles = 0.0;
        let mut sampled = false;

        for col in 0..sched.columns() {
            let c = self.simulate_column(
                &map,
                &sched,
                &tiling,
                active,
                col,
                &mut hier,
                &mut timing,
                &mut tx_buf,
                true,
            );
            simulated_ctas += c.simulated_ctas;
            sampled |= c.sampled;
            extrapolated.add(&c.extrapolated);
            extra_cycles += c.extra_cycles;
            measured.accumulate(&c.stats);
        }

        let l1s = hier.l1_stats();
        let l2s = hier.l2_stats();
        timing.add_cycles(extra_cycles);

        Measurement {
            l1_bytes: measured.l1_bytes + extrapolated.l1_bytes,
            l2_bytes: measured.l2_bytes + extrapolated.l2_bytes,
            dram_read_bytes: measured.dram_bytes + extrapolated.dram_bytes,
            dram_write_bytes: hier.dram_write_bytes() as f64 + extrapolated.store_bytes,
            l1_miss_rate: l1s.miss_rate(),
            l2_miss_rate: l2s.miss_rate(),
            cycles: timing.cycles(),
            sampled,
            simulated_ctas,
            total_ctas: tiling.num_ctas(),
            active_ctas: active,
        }
    }

    /// Runs `layer` with its tile columns partitioned over `n_workers`
    /// parallel workers ([`ShardPlan`]).
    ///
    /// Each worker replays its disjoint column set against a private
    /// [`MemoryHierarchy`] and [`TimingEngine`], so every tile column is
    /// simulated from identical (cold) initial state regardless of which
    /// worker owns it; per-shard counters then merge associatively
    /// ([`HierarchyStats::merge`]) in ascending column order. The result
    /// is therefore **bitwise identical for every worker count** —
    /// `run_sharded(layer, 4) == run_sharded(layer, 1)` exactly.
    ///
    /// The sharded semantics differ from [`SimConfig::shards`]` = None`
    /// in one deliberate way: cache residency does not persist across
    /// tile columns (each column is an independent replay domain). That
    /// matches the analytical model's per-column IFmap refetch assumption
    /// (paper Eq. 10) and typically moves measurements by a few percent
    /// on multi-column layers; single-column layers are unaffected.
    ///
    /// When `n_workers` exceeds the column count the plan switches to
    /// the row axis ([`ShardPlan::auto`]): each worker replays a
    /// contiguous sub-range of a column's CTA-batch list (preceded by
    /// one discarded warm-up batch when the range does not start the
    /// column), and the merge reconstructs the sequential column's
    /// statistics and f64 accumulation order exactly — so narrow layers
    /// scale past their column count with the identity intact.
    pub fn run_sharded(&self, layer: &ConvLayer, n_workers: u32) -> Measurement {
        self.run_sharded_detail(layer, n_workers).measurement
    }

    /// [`Simulator::run_sharded`] plus per-shard cycle accounting — the
    /// primitive the multi-GPU layer (`run_multi`) builds on, where each
    /// shard is one device and the per-device critical path matters.
    /// Public so the fleet's identity tests and perf gate can compare a
    /// distributed merge against the single-process detail bitwise,
    /// per-shard cycles included.
    pub fn run_sharded_detail(&self, layer: &ConvLayer, n_workers: u32) -> ShardedRun {
        let datapath = Datapath::select(&self.gpu, layer.kind());
        let _span = span!(
            "sim.replay",
            mode = "sharded",
            layer = layer.label(),
            workers = n_workers,
            datapath = datapath.label()
        );
        self.replays.inc();
        let tiling = self.tiling(layer);
        let tile = tiling.tile();
        let active = self.active_ctas(tile);
        let map = TensorMap::new(layer);
        let sched = ColumnScheduler::new(&tiling, &self.gpu, active);
        let batches = sched.batches_per_column();
        let sim_batches = self
            .config
            .max_batches_per_column
            .map_or(batches, |m| batches.min(m.max(1)));
        let plan = ShardPlan::auto(sched.columns(), sim_batches, n_workers);

        // The prologue is charged once per layer, as in the sequential
        // path. The charge is latency + bytes only (no compute term), so
        // it is datapath-independent by construction.
        let mut prologue = TimingEngine::new(&self.gpu, tile);
        self.charge_layer_prologue(&mut prologue, tile);

        if plan.axis() == ShardAxis::Rows {
            return self.run_row_sharded(
                &plan,
                &map,
                &sched,
                &tiling,
                active,
                datapath,
                prologue.cycles(),
            );
        }

        let simulate_shard = |range: &std::ops::Range<u64>| {
            let mut out = Vec::with_capacity((range.end - range.start) as usize);
            let mut tx_buf = Vec::with_capacity(64);
            for col in range.clone() {
                out.push(self.replay_column(
                    &map,
                    &sched,
                    &tiling,
                    active,
                    datapath,
                    col,
                    &mut tx_buf,
                ));
            }
            out
        };
        // Inside another parallel region (the engine's layer fan-out
        // already saturates the cores), spawning a second tier of
        // workers only oversubscribes the machine: walk the shards on
        // this thread instead. Results are identical either way — the
        // merge below is pinned to column order.
        let shard_outcomes: Vec<Vec<ColumnReplay>> = if rayon::current_thread_index().is_some() {
            plan.shards().iter().map(simulate_shard).collect()
        } else {
            plan.shards().par_iter().map(simulate_shard).collect()
        };

        merge_column_groups(
            prologue.cycles(),
            tiling.num_ctas(),
            active,
            &shard_outcomes,
        )
    }

    /// The row-axis sharded replay: each worker owns contiguous
    /// sub-ranges of the columns' CTA-batch lists ([`ShardPlan::
    /// partition_rows`]). A sub-range that does not start its column
    /// first replays the immediately preceding batch against its fresh
    /// hierarchy with a scratch timing engine (charges discarded) — one
    /// batch of warm-up is enough to reproduce the sequential column's
    /// per-batch statistics bitwise (per-batch traffic within a column
    /// is stationary; see the probe test below). The merge then walks
    /// columns in ascending order, folds each column's recorded cycle
    /// charges in batch order from zero (the timing engine's charges
    /// are pure functions of their arguments, so this reconstructs the
    /// sequential column's f64 accumulation exactly), and runs the
    /// steady-state batch extrapolation over the reassembled per-batch
    /// stats — yielding a [`Measurement`] bitwise identical to the
    /// column-axis plan's for every worker count.
    #[allow(clippy::too_many_arguments)]
    fn run_row_sharded(
        &self,
        plan: &ShardPlan,
        map: &TensorMap,
        sched: &ColumnScheduler,
        tiling: &LayerTiling,
        active: u32,
        datapath: Datapath,
        prologue_cycles: f64,
    ) -> ShardedRun {
        let batches = sched.batches_per_column();

        let simulate_shard = |shard: usize| {
            let mut tx_buf = Vec::with_capacity(64);
            plan.shard_segments(shard)
                .iter()
                .map(|seg| {
                    self.simulate_segment(map, sched, tiling, active, datapath, seg, &mut tx_buf)
                })
                .collect::<Vec<SegmentReplay>>()
        };
        // Same nested-parallelism guard as the column axis: inside the
        // engine's layer fan-out, walk the shards on this thread.
        let shard_ids: Vec<usize> = (0..plan.n_workers()).collect();
        let shard_outcomes: Vec<Vec<SegmentReplay>> = if rayon::current_thread_index().is_some() {
            shard_ids.iter().map(|&s| simulate_shard(s)).collect()
        } else {
            shard_ids.par_iter().map(|&s| simulate_shard(s)).collect()
        };

        merge_segment_groups(
            prologue_cycles,
            tiling.num_ctas(),
            active,
            plan.columns(),
            batches,
            plan.batches(),
            &shard_outcomes,
        )
    }

    /// Replays one tile column against a fresh hierarchy/timing pair —
    /// the column-axis work unit — and packages it as the serializable
    /// merge part.
    #[allow(clippy::too_many_arguments)]
    fn replay_column(
        &self,
        map: &TensorMap,
        sched: &ColumnScheduler,
        tiling: &LayerTiling,
        active: u32,
        datapath: Datapath,
        col: u64,
        tx_buf: &mut Vec<Transaction>,
    ) -> ColumnReplay {
        let mut hier = MemoryHierarchy::new(&self.gpu);
        let mut timing = TimingEngine::with_datapath(&self.gpu, tiling.tile(), datapath);
        let sim = self.simulate_column(
            map,
            sched,
            tiling,
            active,
            col,
            &mut hier,
            &mut timing,
            tx_buf,
            false,
        );
        timing.add_cycles(sim.extra_cycles);
        ColumnReplay {
            col: sim.col,
            stats: sim.stats,
            simulated_ctas: sim.simulated_ctas,
            sampled: sim.sampled,
            extrapolated: sim.extrapolated,
            snapshot: hier.snapshot(),
            cycles: timing.cycles(),
        }
    }

    /// Replays one [`ColumnSegment`] — a contiguous sub-range of one
    /// column's batches — against a fresh hierarchy, warming up with the
    /// immediately preceding batch when the range does not start the
    /// column. The warm-up's cycle charges go to a scratch engine and
    /// its counter activity is subtracted out via a snapshot delta, so
    /// the segment contributes exactly the activity the sequential
    /// replay would have counted for these batches.
    #[allow(clippy::too_many_arguments)]
    fn simulate_segment(
        &self,
        map: &TensorMap,
        sched: &ColumnScheduler,
        tiling: &LayerTiling,
        active: u32,
        datapath: Datapath,
        seg: &ColumnSegment,
        tx_buf: &mut Vec<Transaction>,
    ) -> SegmentReplay {
        let tile = tiling.tile();
        let loops = tiling.main_loops();
        let limits = self.batch_limits();
        let mut hier = MemoryHierarchy::new(&self.gpu);
        if seg.batches.start > 0 {
            let mut scratch = TimingEngine::with_datapath(&self.gpu, tile, datapath);
            let warm = CtaBatch::new(
                map,
                tile,
                sched.batch(seg.col, seg.batches.start - 1),
                loops,
                active,
            );
            warm.simulate(&mut hier, &mut scratch, limits, tx_buf, None);
        }
        let warm_base = hier.snapshot();
        let mut timing = TimingEngine::with_datapath(&self.gpu, tile, datapath);
        let mut stats = Vec::with_capacity((seg.batches.end - seg.batches.start) as usize);
        let mut charges = Vec::new();
        let mut simulated_ctas = 0u64;
        for b in seg.batches.clone() {
            let batch = CtaBatch::new(map, tile, sched.batch(seg.col, b), loops, active);
            simulated_ctas += batch.len();
            stats.push(batch.simulate(&mut hier, &mut timing, limits, tx_buf, Some(&mut charges)));
        }
        SegmentReplay {
            col: seg.col,
            first_batch: seg.batches.start,
            stats,
            charges,
            delta: hier.snapshot().delta_since(&warm_base),
            simulated_ctas,
            cycles: timing.cycles(),
        }
    }

    /// Simulates one tile column — its sampled batch prefix plus the
    /// steady-state extrapolation of the remainder — against the given
    /// hierarchy and timing state. Shared by the sequential path (shared
    /// state across columns, `hier_persists = true`) and the sharded
    /// path (fresh state per column, `hier_persists = false`: the
    /// end-of-column aging only bumps the mergeable counter, because
    /// nothing ever observes the discarded hierarchy's residency again).
    #[allow(clippy::too_many_arguments)]
    fn simulate_column(
        &self,
        map: &TensorMap,
        sched: &ColumnScheduler,
        tiling: &LayerTiling,
        active: u32,
        col: u64,
        hier: &mut MemoryHierarchy,
        timing: &mut TimingEngine,
        tx_buf: &mut Vec<Transaction>,
        hier_persists: bool,
    ) -> ColumnSim {
        let tile = tiling.tile();
        let loops = tiling.main_loops();
        let limits = self.batch_limits();
        let batches = sched.batches_per_column();
        let sim_batches = self
            .config
            .max_batches_per_column
            .map_or(batches, |m| batches.min(m.max(1)));
        let mut stats: Vec<BatchStats> = Vec::with_capacity(sim_batches as usize);
        let mut simulated_ctas = 0u64;
        let mut sampled = false;

        for b in 0..sim_batches {
            let batch = CtaBatch::new(map, tile, sched.batch(col, b), loops, active);
            simulated_ctas += batch.len();
            let s = batch.simulate(hier, timing, limits, tx_buf, None);
            sampled |= s.loop_extrapolated;
            stats.push(s);
        }

        let (extrapolated, extra_cycles, aged) = extrapolate_batches(&stats, batches, sim_batches);
        if sim_batches < batches {
            // Age L2 by the skipped batches' unique-traffic volume so
            // later work against this hierarchy starts from realistic
            // residency; when the hierarchy dies with the column, only
            // the counter is kept (identical measurements, no pollution
            // work).
            if hier_persists {
                hier.age_l2(aged);
            } else {
                hier.count_aged_l2(aged);
            }
            sampled = true;
        }

        ColumnSim {
            col,
            stats,
            simulated_ctas,
            sampled,
            extrapolated,
            extra_cycles,
        }
    }
}

/// A sharded run's merged measurement plus the per-shard critical paths
/// (cycles each shard's owner spent, prologue included; 0 for idle
/// shards). Consumed by the multi-GPU layer, where shards are devices,
/// and returned by the fleet merge entry points so distributed runs can
/// be compared against local ones field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRun {
    /// The merged measurement — bitwise identical for every shard count.
    pub measurement: Measurement,
    /// Per-shard cycles in shard order.
    pub per_shard_cycles: Vec<f64>,
}

/// One column sub-range's replay outcome — the merge unit of the
/// row-axis sharded path and the `segment` job result on the fleet
/// wire. Warm-up activity is already subtracted out. Every field is
/// integers, flags, or f64s that the vendored JSON writer round-trips
/// bitwise, so a part produced on a remote executor merges identically
/// to one produced in-process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentReplay {
    /// The segment's column (primary merge key).
    pub col: u64,
    /// First batch of the sub-range (secondary merge key).
    pub first_batch: u64,
    /// Per-batch stats of the sub-range, in batch order.
    pub stats: Vec<BatchStats>,
    /// Every cycle charge the sub-range made, in charge order (the
    /// column merge folds these from zero to reconstruct the sequential
    /// accumulation).
    pub charges: Vec<f64>,
    /// Hierarchy counter activity of the sub-range (warm-up excluded).
    pub delta: HierarchyStats,
    /// CTAs actually traced (warm-up excluded).
    pub simulated_ctas: u64,
    /// Cycles of the sub-range's own timing engine (per-shard critical
    /// path contribution; warm-up excluded).
    pub cycles: f64,
}

/// One tile column's replay outcome — the merge unit of the
/// column-axis sharded path and the `column` job result on the fleet
/// wire. Like [`SegmentReplay`], JSON round-trips bitwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnReplay {
    /// The column index (merge-order key).
    pub col: u64,
    /// Per-batch stats of the simulated batch prefix, in batch order.
    pub stats: Vec<BatchStats>,
    /// CTAs actually traced.
    pub simulated_ctas: u64,
    /// Whether batch or loop extrapolation was used.
    pub sampled: bool,
    /// Steady-state extrapolation of the unsimulated batches.
    pub extrapolated: Totals,
    /// The column's private hierarchy counters (aging included).
    pub snapshot: HierarchyStats,
    /// The column's timing-engine cycles, extrapolated tail included.
    pub cycles: f64,
}

/// Merges column replays, pre-grouped by owning shard, in ascending
/// column order: the u64 counters are associative, and pinning the f64
/// accumulation order to the column index makes the totals bitwise
/// identical for every worker count, every grouping, and every CI
/// machine. The single merge implementation behind both the local
/// column-sharded run and the fleet's distributed one.
fn merge_column_groups(
    prologue_cycles: f64,
    total_ctas: u64,
    active: u32,
    groups: &[Vec<ColumnReplay>],
) -> ShardedRun {
    // Per-shard critical paths: an active shard charges its own layer
    // prologue plus its columns; an empty shard is idle.
    let per_shard_cycles: Vec<f64> = groups
        .iter()
        .map(|cols| {
            if cols.is_empty() {
                0.0
            } else {
                prologue_cycles + cols.iter().map(|c| c.cycles).sum::<f64>()
            }
        })
        .collect();

    let mut hstats = HierarchyStats::default();
    let mut measured = Totals::default();
    let mut extrapolated = Totals::default();
    let mut cycles = prologue_cycles;
    let mut simulated_ctas = 0u64;
    let mut sampled = false;
    for (idx, part) in groups.iter().flatten().enumerate() {
        assert_eq!(
            part.col, idx as u64,
            "shard merge must walk columns in ascending order"
        );
        hstats.merge(&part.snapshot);
        measured.accumulate(&part.stats);
        extrapolated.add(&part.extrapolated);
        cycles += part.cycles;
        simulated_ctas += part.simulated_ctas;
        sampled |= part.sampled;
    }

    ShardedRun {
        measurement: Measurement {
            l1_bytes: measured.l1_bytes + extrapolated.l1_bytes,
            l2_bytes: measured.l2_bytes + extrapolated.l2_bytes,
            dram_read_bytes: measured.dram_bytes + extrapolated.dram_bytes,
            dram_write_bytes: hstats.dram_write_bytes as f64 + extrapolated.store_bytes,
            l1_miss_rate: hstats.l1.miss_rate(),
            l2_miss_rate: hstats.l2.miss_rate(),
            cycles,
            sampled,
            simulated_ctas,
            total_ctas,
            active_ctas: active,
        },
        per_shard_cycles,
    }
}

/// Merges segment replays, pre-grouped by owning shard, in ascending
/// (column, batch) order — the flattened group list is already sorted
/// because shards own contiguous ascending unit ranges. Folds each
/// column's recorded cycle charges in batch order from zero (the
/// timing engine's charges are pure functions of their arguments, so
/// this reconstructs the sequential column's f64 accumulation exactly)
/// and runs the steady-state batch extrapolation over the reassembled
/// per-batch stats. The single merge implementation behind both the
/// local row-sharded run and the fleet's distributed one.
fn merge_segment_groups(
    prologue_cycles: f64,
    total_ctas: u64,
    active: u32,
    columns: u64,
    batches: u64,
    sim_batches: u64,
    groups: &[Vec<SegmentReplay>],
) -> ShardedRun {
    // Per-shard critical paths: an active shard charges its own layer
    // prologue plus the simulated work of its segments (warm-up replays
    // are simulator overhead, not modeled GPU work, so they are not
    // charged); an empty shard is idle.
    let mut per_shard_cycles: Vec<f64> = groups
        .iter()
        .map(|segs| {
            if segs.is_empty() {
                0.0
            } else {
                prologue_cycles + segs.iter().map(|s| s.cycles).sum::<f64>()
            }
        })
        .collect();

    let flat: Vec<(usize, &SegmentReplay)> = groups
        .iter()
        .enumerate()
        .flat_map(|(s, segs)| segs.iter().map(move |seg| (s, seg)))
        .collect();
    let mut hstats = HierarchyStats::default();
    let mut measured = Totals::default();
    let mut extrapolated = Totals::default();
    let mut cycles = prologue_cycles;
    let mut simulated_ctas = 0u64;
    let mut sampled = false;
    let mut pos = 0usize;
    for col in 0..columns {
        let mut col_stats: Vec<BatchStats> = Vec::with_capacity(sim_batches as usize);
        let mut col_hs = HierarchyStats::default();
        let mut col_cycles = 0.0;
        let mut next_b = 0u64;
        let mut last_shard = 0usize;
        while pos < flat.len() && flat[pos].1.col == col {
            let (shard, seg) = flat[pos];
            assert_eq!(
                seg.first_batch, next_b,
                "row merge must walk column {col}'s batches in order"
            );
            next_b += seg.stats.len() as u64;
            col_hs.merge(&seg.delta);
            for t in &seg.charges {
                col_cycles += t;
            }
            col_stats.extend_from_slice(&seg.stats);
            simulated_ctas += seg.simulated_ctas;
            last_shard = shard;
            pos += 1;
        }
        assert_eq!(
            next_b, sim_batches,
            "row merge must cover column {col}'s simulated prefix exactly"
        );
        let (extrap, extra_cycles, aged) = extrapolate_batches(&col_stats, batches, sim_batches);
        col_hs.aged_l2_bytes += aged;
        sampled |= col_stats.iter().any(|s| s.loop_extrapolated) || sim_batches < batches;
        hstats.merge(&col_hs);
        measured.accumulate(&col_stats);
        extrapolated.add(&extrap);
        // Mirrors the column axis: the column's folded charges plus its
        // extrapolated tail, then added to the running total.
        let col_total = col_cycles + extra_cycles;
        cycles += col_total;
        // The extrapolated tail extends the shard that finished the
        // column.
        per_shard_cycles[last_shard] += extra_cycles;
    }

    ShardedRun {
        measurement: Measurement {
            l1_bytes: measured.l1_bytes + extrapolated.l1_bytes,
            l2_bytes: measured.l2_bytes + extrapolated.l2_bytes,
            dram_read_bytes: measured.dram_bytes + extrapolated.dram_bytes,
            dram_write_bytes: hstats.dram_write_bytes as f64 + extrapolated.store_bytes,
            l1_miss_rate: hstats.l1.miss_rate(),
            l2_miss_rate: hstats.l2.miss_rate(),
            cycles,
            sampled,
            simulated_ctas,
            total_ctas,
            active_ctas: active,
        },
        per_shard_cycles,
    }
}

/// Steady-state extrapolation of a column's unsimulated batch tail,
/// computed from the simulated prefix `stats`: `(per-level totals,
/// extrapolated cycles, L2 bytes to age)`. Pure in its arguments so the
/// sequential, column-sharded, and row-sharded paths produce bitwise
/// identical extrapolations from identical prefixes.
fn extrapolate_batches(stats: &[BatchStats], batches: u64, sim_batches: u64) -> (Totals, f64, u64) {
    let mut extrapolated = Totals::default();
    let mut extra_cycles = 0.0;
    let mut aged = 0u64;
    if sim_batches < batches {
        let steady = SteadyState::of(stats);
        let rem = (batches - sim_batches) as f64;
        extrapolated.l1_bytes = steady.l1_bytes * rem;
        extrapolated.l2_bytes = steady.l2_bytes * rem;
        extrapolated.dram_bytes = steady.dram_bytes * rem;
        extrapolated.store_bytes = steady.store_bytes * rem;
        extra_cycles = steady.cycles * rem;
        aged = (steady.l2_bytes * rem) as u64;
    }
    (extrapolated, extra_cycles, aged)
}

/// One tile column's simulation outcome — the merge unit of the sharded
/// path and the accumulation unit of the sequential path.
#[derive(Debug)]
struct ColumnSim {
    /// The column index (merge-order key).
    col: u64,
    /// Per-batch stats of the simulated batch prefix, in batch order.
    stats: Vec<BatchStats>,
    /// CTAs actually traced.
    simulated_ctas: u64,
    /// Whether batch or loop extrapolation was used.
    sampled: bool,
    /// Steady-state extrapolation of the unsimulated batches.
    extrapolated: Totals,
    /// Cycles of the unsimulated batches (extrapolated).
    extra_cycles: f64,
}

/// The serializable sampling fingerprint behind
/// [`Backend::config_fingerprint`]: only the knobs a query does *not*
/// carry. The parallelism axes (`shards`, `interconnect`, `topology`)
/// and the schedule knobs (`bucket_mb`, `overlap`) are encoded in every
/// query key, so cache files written under different values of those
/// need no refusal — their entries simply never match.
#[derive(Debug, Serialize)]
struct SamplingFingerprint {
    max_batches_per_column: Option<u64>,
    active_ctas_override: Option<u32>,
    simulate_stores: bool,
    max_loops_per_batch: Option<u64>,
    tile_scale: Option<u32>,
}

/// The effective point-to-point fabric for a `devices`-wide run: the
/// scalar preset when `topology` is `None` (bitwise identical to PR 3),
/// otherwise the parameters derived from the topology graph
/// ([`Topology::price`]).
pub fn fabric_of(
    interconnect: InterconnectKind,
    topology: Option<TopologyKind>,
    devices: u32,
) -> Interconnect {
    let base = interconnect.params();
    match topology {
        None => base,
        Some(kind) => Topology::build(kind, devices).price(&base),
    }
}

/// All-reduce pricing of `payload` logical bytes across `devices` under
/// an interconnect/topology pair: `(link bytes, seconds)`. Dispatches
/// between the legacy scalar ring formula and the topology graph's
/// algorithm-aware pricing (ring on ring/mesh/hierarchical, tree on
/// switch).
pub fn all_reduce_pricing_of(
    interconnect: InterconnectKind,
    topology: Option<TopologyKind>,
    payload: f64,
    devices: u32,
) -> (f64, f64) {
    let base = interconnect.params();
    match topology {
        None => (
            base.all_reduce_bytes(payload, devices),
            base.all_reduce_seconds(payload, devices),
        ),
        Some(kind) => {
            let topo = Topology::build(kind, devices);
            (
                topo.all_reduce_bytes(&base, payload),
                topo.all_reduce_seconds(&base, payload),
            )
        }
    }
}

/// Adds the data-parallel weight-gradient all-reduce on top of a wgrad
/// estimate: `filter_bytes` of gradients (|∇W| = the layer's filter
/// footprint) all-reduced once across `devices`. One code path for the
/// local backend and the fleet coordinator, so the add-on's f64
/// operation order is identical everywhere.
pub fn add_wgrad_all_reduce(
    est: &mut LayerEstimate,
    gpu: &GpuSpec,
    interconnect: InterconnectKind,
    topology: Option<TopologyKind>,
    filter_bytes: f64,
    devices: u32,
) {
    let (ar_bytes, ar_seconds) =
        all_reduce_pricing_of(interconnect, topology, filter_bytes, devices);
    est.link_bytes += ar_bytes;
    est.seconds += ar_seconds;
    est.cycles += gpu.seconds_to_clks(ar_seconds);
}

impl Simulator {
    /// The concrete workload a query pass replays: the forward layer
    /// itself, or its dgrad/wgrad transform. Public so a fleet
    /// coordinator and its executors derive the replayed layer from the
    /// same query with the same transform.
    pub fn pass_workload(layer: &ConvLayer, pass: Pass) -> Result<ConvLayer, Error> {
        match pass {
            Pass::Fwd => Ok(layer.clone()),
            Pass::Dgrad => training::dgrad_layer(layer),
            Pass::Wgrad => training::wgrad_layer(layer),
        }
    }

    /// Today's multi-device replay assumes a homogeneous fleet of this
    /// simulator's GPU; a query naming any other device spec is rejected
    /// rather than silently simulated on the wrong hardware.
    /// (Capacity-weighted heterogeneous partitioning is the ROADMAP
    /// follow-up that lands behind this same query signature.)
    pub fn require_homogeneous(&self, devices: &[GpuSpec]) -> Result<(), Error> {
        let offending: Vec<(usize, &GpuSpec)> = devices
            .iter()
            .enumerate()
            .filter(|(_, d)| **d != self.gpu)
            .collect();
        match offending.first() {
            None => Ok(()),
            Some((_, first)) => {
                let indices = offending
                    .iter()
                    .map(|(i, d)| format!("#{i} ({})", d.name()))
                    .collect::<Vec<_>>()
                    .join(", ");
                Err(Error::InvalidGpu {
                    name: first.name().to_string(),
                    reason: format!(
                        "multi-device queries currently require a homogeneous fleet of the \
                         simulator's own GPU ({own}); device{plural} {indices} of the \
                         {total}-device query differ{s} from {own} and mixed fleets are not \
                         simulated yet",
                        own = self.gpu.name(),
                        plural = if offending.len() == 1 { "" } else { "s" },
                        s = if offending.len() == 1 { "s" } else { "" },
                        total = devices.len(),
                    ),
                })
            }
        }
    }

    /// The exact [`ShardPlan`] a `run_sharded(layer, n_workers)` call
    /// uses — the unit decomposition a fleet coordinator fans out, and
    /// the merge order it must reassemble. Built from
    /// [`Simulator::partition_units`], so sampling
    /// ([`SimConfig::max_batches_per_column`]) is already applied.
    pub fn shard_plan(&self, layer: &ConvLayer, n_workers: u32) -> ShardPlan {
        let (columns, sim_batches) = self.partition_units(layer);
        ShardPlan::auto(columns, sim_batches, n_workers)
    }

    /// The one-per-layer prologue charge in cycles (what an active
    /// shard's critical path starts from).
    fn layer_prologue_cycles(&self, tile: CtaTile) -> f64 {
        let mut t = TimingEngine::new(&self.gpu, tile);
        self.charge_layer_prologue(&mut t, tile);
        t.cycles()
    }

    /// Replays one tile column — the column-axis work unit of a
    /// [`ShardAxis::Columns`] plan — against fresh private state and
    /// returns the serializable merge part. This is what a fleet
    /// executor runs for a `column` job; feeding every column of a
    /// layer (in any grouping) to [`Simulator::merge_column_replays`]
    /// reproduces `run_sharded` bitwise.
    ///
    /// Does **not** bump [`Simulator::replay_count`]: the counter's
    /// unit is one whole-layer replay, and a unit replay is a fraction
    /// of one (the coordinator performing the merge owns the count).
    ///
    /// # Errors
    ///
    /// Rejects a column index outside the layer's tile grid.
    pub fn replay_column_unit(&self, layer: &ConvLayer, col: u64) -> Result<ColumnReplay, Error> {
        let datapath = Datapath::select(&self.gpu, layer.kind());
        let _span = span!(
            "sim.replay_column",
            layer = layer.label(),
            col = col,
            datapath = datapath.label()
        );
        let tiling = self.tiling(layer);
        let active = self.active_ctas(tiling.tile());
        let sched = ColumnScheduler::new(&tiling, &self.gpu, active);
        if col >= sched.columns() {
            return Err(Error::Fleet {
                context: "replay".into(),
                reason: format!(
                    "column {col} out of range: layer `{}` has {} tile columns",
                    layer.label(),
                    sched.columns()
                ),
            });
        }
        let map = TensorMap::new(layer);
        let mut tx_buf = Vec::with_capacity(64);
        Ok(self.replay_column(&map, &sched, &tiling, active, datapath, col, &mut tx_buf))
    }

    /// Replays one column sub-range — the row-axis work unit of a
    /// [`ShardAxis::Rows`] plan — and returns the serializable merge
    /// part (warm-up already subtracted). This is what a fleet executor
    /// runs for a `segment` job; the sub-range must be one of the
    /// plan's own segments for [`Simulator::merge_segment_replays`] to
    /// accept it.
    ///
    /// Does **not** bump [`Simulator::replay_count`] (see
    /// [`Simulator::replay_column_unit`]).
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range column, an empty batch range, and a
    /// range extending past the column's simulated batch prefix.
    pub fn replay_segment_unit(
        &self,
        layer: &ConvLayer,
        col: u64,
        batches: std::ops::Range<u64>,
    ) -> Result<SegmentReplay, Error> {
        let datapath = Datapath::select(&self.gpu, layer.kind());
        let _span = span!(
            "sim.replay_segment",
            layer = layer.label(),
            col = col,
            batch_start = batches.start,
            batch_end = batches.end,
            datapath = datapath.label()
        );
        let tiling = self.tiling(layer);
        let active = self.active_ctas(tiling.tile());
        let sched = ColumnScheduler::new(&tiling, &self.gpu, active);
        let (columns, sim_batches) = self.partition_units(layer);
        let reject = |reason: String| Error::Fleet {
            context: "replay".into(),
            reason,
        };
        if col >= columns {
            return Err(reject(format!(
                "column {col} out of range: layer `{}` has {columns} tile columns",
                layer.label()
            )));
        }
        if batches.start >= batches.end {
            return Err(reject(format!(
                "empty batch range {}..{} for column {col}",
                batches.start, batches.end
            )));
        }
        if batches.end > sim_batches {
            return Err(reject(format!(
                "batch range {}..{} exceeds column {col}'s simulated prefix of {sim_batches} \
                 batches",
                batches.start, batches.end
            )));
        }
        let map = TensorMap::new(layer);
        let mut tx_buf = Vec::with_capacity(64);
        let seg = ColumnSegment { col, batches };
        Ok(self.simulate_segment(&map, &sched, &tiling, active, datapath, &seg, &mut tx_buf))
    }

    /// Merges per-column replay parts — one [`ColumnReplay`] per tile
    /// column, in any order of production — into exactly the
    /// [`ShardedRun`] that `run_sharded_detail(layer, n_workers)` under
    /// a [`ShardAxis::Columns`] plan produces, per-shard cycles
    /// included. The merge itself is the same code the single-process
    /// path runs; this entry point only validates the parts first
    /// (sorted, exhaustive, duplicate-free coverage of the column
    /// range), so malformed remote data surfaces as an [`Error::Fleet`]
    /// instead of a panic.
    ///
    /// # Errors
    ///
    /// Rejects a plan that shards on the row axis (segment replays are
    /// required then) and any part list that is not exactly columns
    /// `0..columns` in ascending order.
    pub fn merge_column_replays(
        &self,
        layer: &ConvLayer,
        n_workers: u32,
        parts: Vec<ColumnReplay>,
    ) -> Result<ShardedRun, Error> {
        let _span = span!(
            "sim.merge",
            kind = "columns",
            layer = layer.label(),
            parts = parts.len()
        );
        let plan = self.shard_plan(layer, n_workers);
        let reject = |reason: String| Error::Fleet {
            context: "merge".into(),
            reason,
        };
        if plan.axis() != ShardAxis::Columns {
            return Err(reject(format!(
                "plan for {n_workers} workers shards layer `{}` on the row axis; \
                 merge its segment replays instead",
                layer.label()
            )));
        }
        if parts.len() as u64 != plan.columns() {
            return Err(reject(format!(
                "expected one replay per tile column ({}), got {}",
                plan.columns(),
                parts.len()
            )));
        }
        for (idx, p) in parts.iter().enumerate() {
            if p.col != idx as u64 {
                return Err(reject(format!(
                    "replay parts must cover columns 0..{} in ascending order; \
                     position {idx} holds column {}",
                    plan.columns(),
                    p.col
                )));
            }
        }
        // Regroup by the plan's own shard ranges so per-shard cycles
        // fold in exactly the single-process order.
        let mut it = parts.into_iter();
        let groups: Vec<Vec<ColumnReplay>> = plan
            .shards()
            .iter()
            .map(|r| it.by_ref().take((r.end - r.start) as usize).collect())
            .collect();
        let tiling = self.tiling(layer);
        let active = self.active_ctas(tiling.tile());
        Ok(merge_column_groups(
            self.layer_prologue_cycles(tiling.tile()),
            tiling.num_ctas(),
            active,
            &groups,
        ))
    }

    /// Merges per-segment replay parts — one [`SegmentReplay`] per
    /// segment of the plan's own row-axis decomposition — into exactly
    /// the [`ShardedRun`] that `run_sharded_detail(layer, n_workers)`
    /// under a [`ShardAxis::Rows`] plan produces. The parts must match
    /// the plan's segment boundaries exactly: per-shard cycle totals
    /// fold each shard's segment list in order, and f64 addition is not
    /// associative across different segment splits, so only the plan's
    /// own boundaries reconstruct the single-process result bitwise.
    ///
    /// # Errors
    ///
    /// Rejects a column-axis plan (column replays are required then)
    /// and any part list whose `(col, batch range, length)` sequence
    /// differs from the plan's segments in flattened shard order.
    pub fn merge_segment_replays(
        &self,
        layer: &ConvLayer,
        n_workers: u32,
        parts: Vec<SegmentReplay>,
    ) -> Result<ShardedRun, Error> {
        let _span = span!(
            "sim.merge",
            kind = "segments",
            layer = layer.label(),
            parts = parts.len()
        );
        let plan = self.shard_plan(layer, n_workers);
        let reject = |reason: String| Error::Fleet {
            context: "merge".into(),
            reason,
        };
        if plan.axis() != ShardAxis::Rows {
            return Err(reject(format!(
                "plan for {n_workers} workers shards layer `{}` on the column axis; \
                 merge its column replays instead",
                layer.label()
            )));
        }
        let expected: Vec<(usize, ColumnSegment)> = (0..plan.n_workers())
            .flat_map(|s| plan.shard_segments(s).into_iter().map(move |seg| (s, seg)))
            .collect();
        if parts.len() != expected.len() {
            return Err(reject(format!(
                "expected {} segment replays (the plan's own decomposition), got {}",
                expected.len(),
                parts.len()
            )));
        }
        for (p, (_, seg)) in parts.iter().zip(&expected) {
            let got_end = p.first_batch + p.stats.len() as u64;
            if p.col != seg.col || p.first_batch != seg.batches.start || got_end != seg.batches.end
            {
                return Err(reject(format!(
                    "segment replay (col {}, batches {}..{got_end}) does not match the \
                     plan's segment (col {}, batches {}..{}); distributed segments must \
                     use the plan's exact boundaries",
                    p.col, p.first_batch, seg.col, seg.batches.start, seg.batches.end
                )));
            }
        }
        // Regroup by shard so per-shard cycles fold in the
        // single-process order.
        let mut it = parts.into_iter();
        let groups: Vec<Vec<SegmentReplay>> = (0..plan.n_workers())
            .map(|s| it.by_ref().take(plan.shard_segments(s).len()).collect())
            .collect();
        let tiling = self.tiling(layer);
        let active = self.active_ctas(tiling.tile());
        let sched = ColumnScheduler::new(&tiling, &self.gpu, active);
        Ok(merge_segment_groups(
            self.layer_prologue_cycles(tiling.tile()),
            tiling.num_ctas(),
            active,
            plan.columns(),
            sched.batches_per_column(),
            plan.batches(),
            &groups,
        ))
    }
}

impl Backend for Simulator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    fn config_fingerprint(&self) -> String {
        let c = &self.config;
        serde_json::to_string(&SamplingFingerprint {
            max_batches_per_column: c.max_batches_per_column,
            active_ctas_override: c.active_ctas_override,
            simulate_stores: c.simulate_stores,
            max_loops_per_batch: c.max_loops_per_batch,
            tile_scale: c.tile_scale,
        })
        .unwrap_or_default()
    }

    fn evaluate(&self, query: &EvalQuery) -> Result<LayerEstimate, Error> {
        self.gpu.validate()?;
        let layer = query.layer()?;
        let replayed = Simulator::pass_workload(&layer, query.pass)?;
        match &query.parallelism {
            Parallelism::Single => Ok(self.run_sequential(&replayed).to_estimate(&self.gpu)),
            Parallelism::Sharded { workers } => Ok(self
                .run_sharded(&replayed, (*workers).max(1))
                .to_estimate(&self.gpu)),
            Parallelism::Multi {
                devices,
                interconnect,
                topology,
            } => {
                self.require_homogeneous(devices)?;
                let g = (devices.len() as u32).max(1);
                let mut est = self
                    .run_multi_fabric(&replayed, g, *interconnect, *topology)
                    .to_estimate(&self.gpu);
                if query.pass == Pass::Wgrad {
                    // On top of the wgrad GEMM replay, a data-parallel
                    // step all-reduces this layer's weight gradients
                    // once across the devices.
                    add_wgrad_all_reduce(
                        &mut est,
                        &self.gpu,
                        *interconnect,
                        *topology,
                        layer.filter_bytes() as f64,
                        g,
                    );
                }
                Ok(est)
            }
        }
    }

    fn evaluate_step(&self, query: &StepQuery) -> Result<StepEvaluation, Error> {
        self.evaluate_step_query(query)
    }

    fn replays(&self) -> Option<u64> {
        Some(self.replay_count())
    }
}

/// Sum of per-batch traffic (simulated or extrapolated). Public (and
/// serializable) because a [`ColumnReplay`] carries its column's
/// extrapolated totals across the fleet wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Totals {
    /// L1 bytes.
    pub l1_bytes: f64,
    /// L2 bytes.
    pub l2_bytes: f64,
    /// DRAM read bytes.
    pub dram_bytes: f64,
    /// Epilogue store bytes (extrapolated totals only; see
    /// [`Totals::accumulate`]'s note).
    pub store_bytes: f64,
}

impl Totals {
    /// Sums a column's simulated batches. Store bytes are deliberately
    /// NOT accumulated here: simulated stores already flow through
    /// `MemoryHierarchy::warp_store` into `dram_write_bytes()`; only the
    /// extrapolated `Totals` carries `store_bytes` (set directly from
    /// the steady state). Summing them here too would double-count.
    pub fn accumulate(&mut self, batches: &[BatchStats]) {
        for b in batches {
            self.l1_bytes += b.traffic.l1_bytes as f64;
            self.l2_bytes += b.traffic.l2_bytes as f64;
            self.dram_bytes += b.traffic.dram_bytes as f64;
        }
    }

    /// Element-wise accumulation of another total.
    pub fn add(&mut self, other: &Totals) {
        self.l1_bytes += other.l1_bytes;
        self.l2_bytes += other.l2_bytes;
        self.dram_bytes += other.dram_bytes;
        self.store_bytes += other.store_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_model::traffic::{self, l1::MliMode};

    fn small_layer() -> ConvLayer {
        ConvLayer::builder("small")
            .batch(2)
            .input(16, 14, 14)
            .output_channels(64)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn traffic_funnels_down_the_hierarchy() {
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
        let m = sim.run(&small_layer());
        assert!(m.l1_bytes > 0.0);
        assert!(m.l1_bytes >= m.l2_bytes);
        assert!(m.l2_bytes >= m.dram_read_bytes);
        assert!(!m.sampled);
        assert_eq!(m.simulated_ctas, m.total_ctas);
    }

    #[test]
    fn dram_reads_at_least_compulsory_footprint() {
        let l = small_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
        let m = sim.run(&l);
        // Must read at least every useful input byte once (pads are not
        // stored, so the unpadded footprint is the floor; sector rounding
        // only adds).
        let floor = (l.ifmap_bytes() + l.filter_bytes()) as f64;
        assert!(
            m.dram_read_bytes >= floor * 0.9,
            "{} < {floor}",
            m.dram_read_bytes
        );
    }

    #[test]
    fn ofmap_stores_measured_exactly() {
        let l = small_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
        let m = sim.run(&l);
        // Row-major OFmap stores with N=64: each warp's 32 contiguous
        // elements stay within rows; volume = M*N*4 rounded to sectors.
        let exact = l.ofmap_bytes() as f64;
        assert!(m.dram_write_bytes >= exact);
        assert!(m.dram_write_bytes <= exact * 1.3);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let a = sim.run(&small_layer());
        let b = sim.run(&small_layer());
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_approximates_exhaustive() {
        // A taller layer (98 CTA rows at 1 active CTA/SM) so sampling
        // actually kicks in.
        let l = ConvLayer::builder("tall")
            .batch(64)
            .input(16, 14, 14)
            .output_channels(64)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let full = Simulator::new(
            GpuSpec::titan_xp(),
            SimConfig {
                max_batches_per_column: None,
                active_ctas_override: Some(1),
                max_loops_per_batch: None,
                ..SimConfig::default()
            },
        )
        .run(&l);
        let sampled = Simulator::new(
            GpuSpec::titan_xp(),
            SimConfig {
                max_batches_per_column: Some(2),
                active_ctas_override: Some(1),
                max_loops_per_batch: None,
                ..SimConfig::default()
            },
        )
        .run(&l);
        assert!(sampled.sampled);
        assert!(sampled.simulated_ctas < full.simulated_ctas);
        for (a, b, what) in [
            (sampled.l1_bytes, full.l1_bytes, "l1"),
            (sampled.l2_bytes, full.l2_bytes, "l2"),
            (sampled.dram_read_bytes, full.dram_read_bytes, "dram"),
        ] {
            let err = (a - b).abs() / b;
            assert!(err < 0.25, "{what}: sampled {a} vs full {b} ({err:.2})");
        }
    }

    #[test]
    fn measured_l1_close_to_model_for_simple_layer() {
        // The analytical L1 model and the simulator count the same
        // quantity; for a clean stride-1 layer they should land within
        // ~25% of each other.
        let l = small_layer();
        let gpu = GpuSpec::titan_xp();
        let tiling = LayerTiling::new(&l);
        let est = traffic::estimate(&l, &tiling, &gpu, MliMode::PaperProfiled);
        let meas = Simulator::new(gpu, SimConfig::exhaustive()).run(&l);
        let ratio = est.l1_bytes / meas.l1_bytes;
        assert!(
            (0.5..2.0).contains(&ratio),
            "model {} vs measured {} (ratio {ratio})",
            est.l1_bytes,
            meas.l1_bytes
        );
    }

    #[test]
    fn miss_rates_are_probabilities() {
        let m = Simulator::new(GpuSpec::titan_xp(), SimConfig::default()).run(&small_layer());
        assert!((0.0..=1.0).contains(&m.l1_miss_rate));
        assert!((0.0..=1.0).contains(&m.l2_miss_rate));
        assert!(m.cycles > 0.0);
        assert!(m.seconds(&GpuSpec::titan_xp()) > 0.0);
    }

    #[test]
    fn pointwise_layer_measures_higher_l1_miss_rate_than_3x3() {
        // Fig. 4's spread: 1x1 layers reuse nothing inside a tile.
        let gpu = GpuSpec::titan_xp();
        let sim = Simulator::new(gpu, SimConfig::exhaustive());
        let pw = ConvLayer::builder("pw")
            .batch(2)
            .input(64, 14, 14)
            .output_channels(64)
            .filter(1, 1)
            .build()
            .unwrap();
        let mp = sim.run(&pw);
        let m3 = sim.run(&small_layer());
        assert!(
            mp.l1_miss_rate > m3.l1_miss_rate,
            "1x1 {} vs 3x3 {}",
            mp.l1_miss_rate,
            m3.l1_miss_rate
        );
    }

    #[test]
    fn single_query_matches_run() {
        let gpu = GpuSpec::titan_xp();
        let sim = Simulator::new(gpu.clone(), SimConfig::default());
        let l = small_layer();
        let m = sim.run(&l);
        let est = sim
            .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
            .unwrap();
        assert_eq!(est.l1_bytes, m.l1_bytes);
        assert_eq!(est.l2_bytes, m.l2_bytes);
        assert_eq!(est.dram_read_bytes, m.dram_read_bytes);
        assert_eq!(est.cycles, m.cycles);
        assert_eq!(est.seconds, m.seconds(&gpu));
        assert_eq!(est.bottleneck, None);
        assert_eq!(est.source, EstimateSource::Simulation);
        assert_eq!(Backend::name(&sim), "sim");
    }

    #[test]
    fn replay_counter_counts_full_layer_replays() {
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        assert_eq!(sim.replay_count(), 0);
        sim.run(&small_layer());
        assert_eq!(sim.replay_count(), 1);
        sim.run_sharded(&small_layer(), 2);
        assert_eq!(sim.replay_count(), 2);
        // Clones share the counter (the engine clones backends freely).
        let clone = sim.clone();
        clone.run(&small_layer());
        assert_eq!(sim.replay_count(), 3);
    }

    #[test]
    fn pass_queries_replay_the_transformed_workloads() {
        // A dgrad query replays the transposed layer, a wgrad query the
        // FC-shaped wgrad GEMM — exactly what a forward query of the
        // transformed shape replays.
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let l = small_layer();
        for (pass, transformed) in [
            (Pass::Dgrad, training::dgrad_layer(&l).unwrap()),
            (Pass::Wgrad, training::wgrad_layer(&l).unwrap()),
        ] {
            let via_pass = sim
                .evaluate(&EvalQuery::new(&l, pass, Parallelism::Single))
                .unwrap();
            let via_fwd = sim
                .evaluate(&EvalQuery::forward(&transformed, Parallelism::Single))
                .unwrap();
            assert_eq!(via_pass, via_fwd, "{pass}");
        }
    }

    #[test]
    fn multi_queries_reject_foreign_device_specs() {
        // Heterogeneous (or simply mismatched) fleets are not simulated
        // yet: the query API admits them, the backend refuses them.
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let q = EvalQuery::forward(
            &small_layer(),
            Parallelism::Multi {
                devices: vec![GpuSpec::titan_xp(), GpuSpec::v100()],
                interconnect: InterconnectKind::Ideal,
                topology: None,
            },
        );
        let err = sim.evaluate(&q).unwrap_err();
        assert!(err.to_string().contains("homogeneous"), "{err}");
        // The rejection names the offending device index and both specs.
        let msg = err.to_string();
        assert!(msg.contains("#1 (V100)"), "{msg}");
        assert!(msg.contains("TITAN Xp"), "{msg}");
        assert!(msg.contains("2-device"), "{msg}");
        // Several offenders are all enumerated.
        let multi = sim
            .require_homogeneous(&[GpuSpec::v100(), GpuSpec::titan_xp(), GpuSpec::p100()])
            .unwrap_err()
            .to_string();
        assert!(multi.contains("#0 (V100)"), "{multi}");
        assert!(multi.contains("#2 (P100)"), "{multi}");
        assert!(!multi.contains("#1 ("), "{multi}");
        // A matching fleet is accepted.
        let ok = EvalQuery::forward(
            &small_layer(),
            Parallelism::multi(sim.gpu(), 2, InterconnectKind::Ideal),
        );
        assert!(sim.evaluate(&ok).is_ok());
    }

    #[test]
    fn tile_scale_changes_tiling_like_the_model() {
        let l = ConvLayer::builder("wide")
            .batch(8)
            .input(64, 28, 28)
            .output_channels(256)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let plain = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let scaled = Simulator::new(
            GpuSpec::titan_xp(),
            SimConfig {
                tile_scale: Some(2),
                ..SimConfig::default()
            },
        );
        assert_eq!(plain.tiling(&l).tile().blk_m(), 128);
        assert_eq!(scaled.tiling(&l).tile().blk_m(), 256);
        // Bigger tiles -> fewer CTAs in the measurement.
        let mp = plain.run(&l);
        let ms = scaled.run(&l);
        assert!(ms.total_ctas < mp.total_ctas);
    }

    #[test]
    fn old_sim_config_json_without_tile_scale_still_parses() {
        // The fields were added with serde defaults so archived configs
        // keep deserializing.
        let json = "{\"max_batches_per_column\":4,\"active_ctas_override\":null,\
                    \"simulate_stores\":true,\"max_loops_per_batch\":32}";
        let cfg: SimConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.tile_scale, None);
        assert_eq!(cfg.shards, None);
        assert_eq!(cfg.interconnect, InterconnectKind::Ideal);
        assert_eq!(cfg.topology, None);
        assert_eq!(cfg.bucket_mb, 25);
        assert!(!cfg.overlap);
        assert_eq!(cfg.max_batches_per_column, Some(4));
    }

    #[test]
    fn fabric_and_all_reduce_dispatch_on_the_topology() {
        let gpu = GpuSpec::titan_xp();
        // topology = None: the legacy scalar preset, verbatim.
        let legacy = Simulator::new(
            gpu.clone(),
            SimConfig {
                interconnect: InterconnectKind::NvLink,
                ..SimConfig::default()
            },
        );
        assert_eq!(legacy.fabric(4), InterconnectKind::NvLink.params());
        let ic = InterconnectKind::NvLink.params();
        assert_eq!(
            legacy.all_reduce_pricing(1e6, 4),
            (ic.all_reduce_bytes(1e6, 4), ic.all_reduce_seconds(1e6, 4))
        );
        // topology = Some: parameters derived from the graph.
        let topo = Simulator::new(
            gpu,
            SimConfig {
                interconnect: InterconnectKind::NvLink,
                topology: Some(TopologyKind::Switch),
                ..SimConfig::default()
            },
        );
        let fab = topo.fabric(4);
        assert_eq!(fab.topology_factor, 2.0, "star: every pair is 2 hops");
        let (bytes, secs) = topo.all_reduce_pricing(1e6, 4);
        assert!(bytes > ic.all_reduce_bytes(1e6, 4), "tree crosses the hub");
        assert!(secs > 0.0);
        // Ideal stays free under every topology.
        let ideal_topo = Simulator::new(
            GpuSpec::titan_xp(),
            SimConfig {
                topology: Some(TopologyKind::Hierarchical),
                ..SimConfig::default()
            },
        );
        assert_eq!(ideal_topo.all_reduce_pricing(1e9, 8), (0.0, 0.0));
        assert_eq!(ideal_topo.fabric(8), InterconnectKind::Ideal.params());
    }

    /// A layer with four tile columns (Co = 512, LARGE tile blkN = 128)
    /// that still simulates in milliseconds.
    fn four_column_layer() -> ConvLayer {
        ConvLayer::builder("four_col")
            .batch(2)
            .input(16, 14, 14)
            .output_channels(512)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_result_is_identical_for_every_worker_count() {
        let l = four_column_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let one = sim.run_sharded(&l, 1);
        assert!(one.l1_bytes > 0.0 && one.cycles > 0.0);
        // Bitwise-equal Measurement (PartialEq on f64 fields) for any
        // partitioning, including more workers than columns.
        for n in [2, 3, 4, 7, 16] {
            assert_eq!(sim.run_sharded(&l, n), one, "n_workers={n}");
        }
    }

    #[test]
    fn config_shards_selects_the_sharded_path() {
        let l = four_column_layer();
        let gpu = GpuSpec::titan_xp();
        let explicit = Simulator::new(gpu.clone(), SimConfig::default()).run_sharded(&l, 2);
        let via_config = Simulator::new(
            gpu.clone(),
            SimConfig {
                shards: Some(2),
                ..SimConfig::default()
            },
        )
        .run(&l);
        assert_eq!(via_config, explicit);
        // And the query entry point agrees with both.
        let sim = Simulator::new(gpu, SimConfig::default());
        let est = sim
            .evaluate(&EvalQuery::forward(&l, Parallelism::Sharded { workers: 2 }))
            .unwrap();
        assert_eq!(est.l1_bytes, explicit.l1_bytes);
        assert_eq!(est.cycles, explicit.cycles);
        assert_eq!(est.source, EstimateSource::Simulation);
    }

    #[test]
    fn sharded_stays_within_band_of_sequential_replay() {
        // Sharding isolates tile columns (no cross-column L2 residency),
        // which matches the model's per-column refetch assumption and may
        // move measurements by a few percent — but no more.
        let l = four_column_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let seq = sim.run(&l);
        let shd = sim.run_sharded(&l, 4);
        assert_eq!(shd.total_ctas, seq.total_ctas);
        assert_eq!(shd.simulated_ctas, seq.simulated_ctas);
        for (a, b, what) in [
            (shd.l1_bytes, seq.l1_bytes, "l1"),
            (shd.l2_bytes, seq.l2_bytes, "l2"),
            (shd.dram_read_bytes, seq.dram_read_bytes, "dram"),
            (shd.dram_write_bytes, seq.dram_write_bytes, "writes"),
            (shd.cycles, seq.cycles, "cycles"),
        ] {
            let err = (a - b).abs() / b;
            assert!(
                err < 0.25,
                "{what}: sharded {a} vs sequential {b} ({err:.3})"
            );
        }
    }

    #[test]
    fn single_column_layer_shards_to_one_worker_exactly() {
        // One tile column cannot be split: every worker count degenerates
        // to the same single-column replay (surplus shards are empty).
        let l = small_layer(); // Co = 64 -> MEDIUM tile -> 1 column
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
        let one = sim.run_sharded(&l, 1);
        assert_eq!(sim.run_sharded(&l, 8), one);
        // With a single column there is no cross-column residency to
        // lose: byte counters match the sequential replay exactly, and
        // cycles agree to fp rounding (the prologue is added to the
        // accumulator in a different order).
        let seq = sim.run(&l);
        assert_eq!(one.l1_bytes, seq.l1_bytes);
        assert_eq!(one.l2_bytes, seq.l2_bytes);
        assert_eq!(one.dram_read_bytes, seq.dram_read_bytes);
        assert_eq!(one.dram_write_bytes, seq.dram_write_bytes);
        assert_eq!(one.l1_miss_rate, seq.l1_miss_rate);
        assert_eq!(one.l2_miss_rate, seq.l2_miss_rate);
        assert!((one.cycles - seq.cycles).abs() <= 1e-9 * seq.cycles);
    }

    /// A narrow layer (Co = 128 ⇒ at most 2 tile columns) whose columns
    /// are tall enough that row-level sharding engages warm-up segments.
    fn narrow_layer() -> ConvLayer {
        ConvLayer::builder("narrow")
            .batch(64)
            .input(64, 14, 14)
            .output_channels(128)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn narrow_layer_row_sharding_is_identical_for_every_worker_count() {
        let l = narrow_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let tiling = sim.tiling(&l);
        assert!(tiling.cta_columns() <= 2, "need a narrow layer");
        let sched = ColumnScheduler::new(&tiling, sim.gpu(), sim.active_ctas(tiling.tile()));
        assert!(
            sched.batches_per_column() > 1,
            "need tall columns so sub-ranges split"
        );
        let one = sim.run_sharded(&l, 1);
        assert!(one.l1_bytes > 0.0 && one.cycles > 0.0);
        // Bitwise-equal Measurement for every worker count, including
        // counts far beyond the column count (the row axis).
        for n in 2..=8 {
            assert_eq!(sim.run_sharded(&l, n), one, "n_workers={n}");
        }
        // And with sampling disabled (full columns, warm-up segments in
        // the middle of long batch lists).
        let full = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
        let ref_full = full.run_sharded(&l, 1);
        for n in [3, 8] {
            assert_eq!(full.run_sharded(&l, n), ref_full, "exhaustive n={n}");
        }
    }

    #[test]
    fn row_sharding_engages_more_workers_than_columns() {
        // The plan the simulator builds for a narrow layer at n >
        // columns is a row plan in which every worker owns work.
        let l = narrow_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let (columns, sim_batches) = sim.partition_units(&l);
        // The public helper reports exactly what the sharded runner
        // will partition on.
        assert_eq!(columns, sim.tiling(&l).cta_columns());
        let plan = ShardPlan::auto(columns, sim_batches, 8);
        assert_eq!(plan.axis(), crate::shard::ShardAxis::Rows);
        let busy = (0..plan.n_workers())
            .filter(|&s| !plan.shard_segments(s).is_empty())
            .count() as u64;
        assert_eq!(
            busy,
            8.min(columns * sim_batches),
            "every worker up to the unit count owns a sub-range"
        );
        assert!(busy > columns, "row axis beats the column cap");
    }

    #[test]
    fn probe_one_warmup_batch_reproduces_sequential_batch_stats() {
        // PROBE (design gate for row-level sharding): batch b replayed
        // against a hierarchy warmed ONLY by batch b-1 must bitwise
        // reproduce the sequential cold-column replay's batch-b stats.
        let tall_3x3 = ConvLayer::builder("tall")
            .batch(64)
            .input(16, 14, 14)
            .output_channels(64)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        // High K (Ci*R*S = 2304 -> hundreds of main loops) so the
        // loop-extrapolation path (age_l2 with a shifted aging cursor)
        // is exercised too.
        let deep_3x3 = ConvLayer::builder("deep")
            .batch(64)
            .input(256, 14, 14)
            .output_channels(64)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let narrow_1x1 = ConvLayer::builder("narrow1x1")
            .batch(256)
            .input(256, 7, 7)
            .output_channels(128)
            .filter(1, 1)
            .build()
            .unwrap();
        for l in [&tall_3x3, &deep_3x3, &narrow_1x1] {
            let sim = Simulator::new(
                GpuSpec::titan_xp(),
                SimConfig {
                    active_ctas_override: Some(1),
                    ..SimConfig::default()
                },
            );
            let tiling = sim.tiling(l);
            let map = TensorMap::new(l);
            let sched = ColumnScheduler::new(&tiling, sim.gpu(), 1);
            assert!(
                sched.batches_per_column() >= 4,
                "{}: need a tall column",
                l.label()
            );
            let limits = BatchLimits {
                max_loops: Some(32),
                simulate_stores: true,
            };
            let run_range = |start: u64, end: u64| {
                let mut hier = MemoryHierarchy::new(sim.gpu());
                let mut timing = TimingEngine::new(sim.gpu(), tiling.tile());
                let mut buf = Vec::new();
                let mut stats = Vec::new();
                let mut snaps = Vec::new();
                for b in start..end {
                    let batch = CtaBatch::new(
                        &map,
                        tiling.tile(),
                        sched.batch(0, b),
                        tiling.main_loops(),
                        1,
                    );
                    stats.push(batch.simulate(&mut hier, &mut timing, limits, &mut buf, None));
                    snaps.push(hier.snapshot());
                }
                (stats, snaps)
            };
            let (ref_stats, ref_snaps) = run_range(0, 4);
            for b0 in 1..4u64 {
                let (st, sn) = run_range(b0 - 1, 4);
                for i in 1..st.len() {
                    let want = &ref_stats[(b0 - 1) as usize + i];
                    let got = &st[i];
                    let tag = format!("{} b0={b0} i={i}", l.label());
                    assert_eq!(got.traffic, want.traffic, "{tag} traffic");
                    assert_eq!(got.store_bytes, want.store_bytes, "{tag} stores");
                    assert!(
                        got.cycles == want.cycles,
                        "{tag} cycles {} vs {}",
                        got.cycles,
                        want.cycles
                    );
                }
                // Snapshot deltas past the warm-up batch must match the
                // sequential replay's deltas over the same batch range.
                let dl = |a: &HierarchyStats, b: &HierarchyStats| {
                    (
                        a.reads.l1_bytes - b.reads.l1_bytes,
                        a.reads.l2_bytes - b.reads.l2_bytes,
                        a.reads.dram_bytes - b.reads.dram_bytes,
                        a.l1.accesses - b.l1.accesses,
                        a.l1.sector_hits - b.l1.sector_hits,
                        a.l1.sector_misses - b.l1.sector_misses,
                        a.l2.accesses - b.l2.accesses,
                        a.l2.sector_hits - b.l2.sector_hits,
                        a.l2.sector_misses - b.l2.sector_misses,
                        a.l2_write_bytes - b.l2_write_bytes,
                        a.dram_write_bytes - b.dram_write_bytes,
                        a.aged_l2_bytes - b.aged_l2_bytes,
                    )
                };
                // Per-batch deltas (not just the whole tail) so any
                // segment boundary reconstructs exactly.
                for i in 1..sn.len() {
                    let got = dl(&sn[i], &sn[i - 1]);
                    let j = (b0 - 1) as usize + i;
                    let want = dl(&ref_snaps[j], &ref_snaps[j - 1]);
                    assert_eq!(got, want, "{} b0={b0} i={i} snapshot delta", l.label());
                }
            }
        }
    }

    #[test]
    fn steady_state_over_merged_shard_stats_is_order_independent() {
        // The merge-order determinism contract behind the sharded path:
        // concatenating per-column batch stats in ascending column order
        // yields the same SteadyState no matter how columns were grouped
        // into shards — because each column's stats are computed from
        // identical fresh state.
        let l = ConvLayer::builder("steady")
            .batch(64)
            .input(16, 14, 14)
            .output_channels(512)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let sim = Simulator::new(
            GpuSpec::titan_xp(),
            SimConfig {
                // Force batch sampling so SteadyState extrapolation runs.
                max_batches_per_column: Some(2),
                active_ctas_override: Some(1),
                ..SimConfig::default()
            },
        );
        let tiling = sim.tiling(&l);
        let map = TensorMap::new(&l);
        let sched = ColumnScheduler::new(&tiling, sim.gpu(), 1);
        assert!(sched.columns() >= 4, "need a multi-column layer");
        assert!(
            sched.batches_per_column() > 2,
            "need sampling to engage the steady state"
        );

        let merged_stats = |n_workers: u32| -> Vec<BatchStats> {
            let plan = ShardPlan::partition(sched.columns(), n_workers);
            let mut all = Vec::new();
            for range in plan.shards() {
                let mut tx_buf = Vec::new();
                for col in range.clone() {
                    let mut hier = MemoryHierarchy::new(sim.gpu());
                    let mut timing = TimingEngine::new(sim.gpu(), tiling.tile());
                    let c = sim.simulate_column(
                        &map,
                        &sched,
                        &tiling,
                        1,
                        col,
                        &mut hier,
                        &mut timing,
                        &mut tx_buf,
                        false,
                    );
                    all.extend(c.stats);
                }
            }
            all
        };

        let reference = merged_stats(1);
        let steady1 = SteadyState::of(&reference);
        assert!(steady1.l2_bytes > 0.0);
        for n in 2..=4 {
            let merged = merged_stats(n);
            let s = SteadyState::of(&merged);
            assert_eq!(s.l1_bytes, steady1.l1_bytes, "shards={n}");
            assert_eq!(s.l2_bytes, steady1.l2_bytes, "shards={n}");
            assert_eq!(s.dram_bytes, steady1.dram_bytes, "shards={n}");
            assert_eq!(s.store_bytes, steady1.store_bytes, "shards={n}");
            assert_eq!(s.cycles, steady1.cycles, "shards={n}");
        }
    }

    fn wide_layer() -> ConvLayer {
        // Co = 512 -> LARGE tile -> 4 tile columns.
        ConvLayer::builder("wide")
            .batch(2)
            .input(16, 14, 14)
            .output_channels(512)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn unit_replays_merge_to_the_column_sharded_run_bitwise() {
        // The fleet contract on the column axis: replaying each column
        // as an independent unit and merging through the validated
        // public entry point reproduces run_sharded_detail exactly —
        // Measurement AND per-shard cycles — for every worker count
        // that stays on the column axis.
        let l = wide_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        for n in [1u32, 2, 3, 4] {
            let plan = sim.shard_plan(&l, n);
            assert_eq!(plan.axis(), ShardAxis::Columns, "workers={n}");
            let parts: Vec<ColumnReplay> = (0..plan.columns())
                .map(|c| sim.replay_column_unit(&l, c).unwrap())
                .collect();
            let merged = sim.merge_column_replays(&l, n, parts).unwrap();
            let local = sim.run_sharded_detail(&l, n);
            assert_eq!(merged, local, "workers={n}");
        }
    }

    #[test]
    fn unit_replays_merge_to_the_row_sharded_run_bitwise() {
        // The fleet contract on the row axis: replaying each plan
        // segment as an independent unit (plan-exact boundaries) and
        // merging reproduces run_sharded_detail exactly. Workers must
        // exceed the column count to force the row axis.
        let l = narrow_layer();
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        for n in [3u32, 4, 6] {
            let plan = sim.shard_plan(&l, n);
            assert_eq!(plan.axis(), ShardAxis::Rows, "workers={n}");
            let parts: Vec<SegmentReplay> = (0..plan.n_workers())
                .flat_map(|s| plan.shard_segments(s))
                .map(|seg| {
                    sim.replay_segment_unit(&l, seg.col, seg.batches.clone())
                        .unwrap()
                })
                .collect();
            let merged = sim.merge_segment_replays(&l, n, parts).unwrap();
            let local = sim.run_sharded_detail(&l, n);
            assert_eq!(merged, local, "workers={n}");
        }
    }

    #[test]
    fn replay_parts_round_trip_json_bitwise() {
        // The wire contract: a part that crosses a JSON boundary (the
        // vendored writer emits shortest-round-trip f64s) merges to the
        // same bits as one that never left the process.
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let wide = wide_layer();
        let col = sim.replay_column_unit(&wide, 1).unwrap();
        let json = serde_json::to_string(&col).unwrap();
        let back: ColumnReplay = serde_json::from_str(&json).unwrap();
        assert_eq!(back, col);

        let narrow = narrow_layer();
        let plan = sim.shard_plan(&narrow, 4);
        let seg0 = plan.shard_segments(1).remove(0);
        let seg = sim
            .replay_segment_unit(&narrow, seg0.col, seg0.batches)
            .unwrap();
        let json = serde_json::to_string(&seg).unwrap();
        let back: SegmentReplay = serde_json::from_str(&json).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn unit_replays_do_not_bump_the_replay_counter() {
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let l = wide_layer();
        sim.replay_column_unit(&l, 0).unwrap();
        let narrow = narrow_layer();
        let plan = sim.shard_plan(&narrow, 4);
        let seg = (0..plan.n_workers())
            .flat_map(|s| plan.shard_segments(s))
            .next()
            .unwrap();
        sim.replay_segment_unit(&narrow, seg.col, seg.batches)
            .unwrap();
        assert_eq!(sim.replay_count(), 0);
        sim.run_sharded(&l, 2);
        assert_eq!(sim.replay_count(), 1);
    }

    #[test]
    fn merge_entry_points_reject_malformed_parts() {
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
        let wide = wide_layer();
        let plan = sim.shard_plan(&wide, 2);
        let parts: Vec<ColumnReplay> = (0..plan.columns())
            .map(|c| sim.replay_column_unit(&wide, c).unwrap())
            .collect();

        // Missing column.
        let mut missing = parts.clone();
        missing.pop();
        let err = sim.merge_column_replays(&wide, 2, missing).unwrap_err();
        assert!(err.to_string().contains("merge"), "{err}");

        // Out-of-order (duplicate-at-wrong-slot) coverage.
        let mut swapped = parts.clone();
        swapped.swap(0, 1);
        assert!(sim.merge_column_replays(&wide, 2, swapped).is_err());

        // Wrong axis: a row-axis plan refuses column parts.
        let narrow = narrow_layer();
        let err = sim.merge_column_replays(&narrow, 8, parts).unwrap_err();
        assert!(err.to_string().contains("row axis"), "{err}");

        // Segment merge: boundaries must be plan-exact.
        let nplan = sim.shard_plan(&narrow, 4);
        assert_eq!(nplan.axis(), ShardAxis::Rows);
        let mut segs: Vec<SegmentReplay> = (0..nplan.n_workers())
            .flat_map(|s| nplan.shard_segments(s))
            .map(|seg| {
                sim.replay_segment_unit(&narrow, seg.col, seg.batches)
                    .unwrap()
            })
            .collect();
        segs[0].first_batch += 1;
        let err = sim.merge_segment_replays(&narrow, 4, segs).unwrap_err();
        assert!(err.to_string().contains("exact boundaries"), "{err}");

        // Out-of-range unit requests are refused, not panicked on.
        assert!(sim.replay_column_unit(&wide, 1_000).is_err());
        assert!(sim.replay_segment_unit(&narrow, 0, 5..5).is_err());
        assert!(sim.replay_segment_unit(&narrow, 0, 0..1_000_000).is_err());
    }

    fn gemm_layer() -> ConvLayer {
        ConvLayer::gemm("blk_fc1", 8, 3072, 768).unwrap()
    }

    #[test]
    fn tensor_core_gemm_is_faster_than_ffma_and_traffic_identical() {
        // v100_tensor() is v100() plus the tensor cores, so only the
        // compute term can differ between the two simulators.
        let ffma = Simulator::new(GpuSpec::v100(), SimConfig::default());
        assert!(GpuSpec::v100_tensor().has_tensor_cores());
        let tc = Simulator::new(GpuSpec::v100_tensor(), SimConfig::default());
        let l = gemm_layer();
        let mf = ffma.run(&l);
        let mt = tc.run(&l);
        // The datapath changes cycle accounting only: every traffic
        // number is bitwise identical.
        assert_eq!(mf.l1_bytes, mt.l1_bytes);
        assert_eq!(mf.l2_bytes, mt.l2_bytes);
        assert_eq!(mf.dram_read_bytes, mt.dram_read_bytes);
        assert_eq!(mf.dram_write_bytes, mt.dram_write_bytes);
        assert!(
            mt.cycles < mf.cycles,
            "tensor cores must not be slower: {} vs {}",
            mt.cycles,
            mf.cycles
        );
    }

    #[test]
    fn conv_measurement_is_unchanged_by_tensor_core_presence() {
        // Conv layers stay on FFMA: the paper's CNN results are bitwise
        // untouched by a device that happens to have tensor cores.
        let plain = Simulator::new(GpuSpec::v100(), SimConfig::default());
        let tc = Simulator::new(GpuSpec::v100_tensor(), SimConfig::default());
        let l = small_layer();
        assert_eq!(plain.run(&l), tc.run(&l));
    }

    #[test]
    fn tensor_core_sharding_is_identical_for_every_worker_count() {
        let sim = Simulator::new(GpuSpec::a100(), SimConfig::default());
        let l = gemm_layer();
        let base = sim.run_sharded(&l, 1);
        for n in [2, 3, 4, 7, 16] {
            assert_eq!(base, sim.run_sharded(&l, n), "workers={n}");
        }
        // Attention replays hold the same contract on the row axis too.
        let attn = ConvLayer::attention("attn", 2, 64, 4, 32).unwrap();
        let abase = sim.run_sharded(&attn, 1);
        for n in [2, 5, 9] {
            assert_eq!(abase, sim.run_sharded(&attn, n), "workers={n}");
        }
    }

    #[test]
    fn tensor_core_unit_replays_merge_bitwise() {
        // The fleet contract (unit replay + merge == local sharded run)
        // holds on the tensor-core datapath because every executor
        // selects the datapath from (gpu, kind) independently.
        let sim = Simulator::new(GpuSpec::v100_tensor(), SimConfig::default());
        let l = gemm_layer();
        let n = 4;
        let local = sim.run_sharded_detail(&l, n);
        let plan = sim.shard_plan(&l, n);
        assert_eq!(plan.axis(), ShardAxis::Columns);
        let parts: Vec<ColumnReplay> = (0..plan.columns())
            .map(|c| sim.replay_column_unit(&l, c).unwrap())
            .collect();
        let merged = sim.merge_column_replays(&l, n, parts).unwrap();
        assert_eq!(local, merged);
    }
}
