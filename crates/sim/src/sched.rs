//! Column-wise CTA scheduling (paper §IV-C, Fig. 8).
//!
//! The im2col GEMM's CTA grid is tall and skinny, so the paper assumes
//! CTAs are scheduled column-major: all CTAs of tile column 0 first, then
//! column 1, and so on, with consecutive CTAs assigned round-robin to SMs.
//! Concurrently resident CTAs (a *CTA batch* of `num_sm × active_ctas`)
//! run their main loops in lockstep, which is what gives filter data its
//! short L2 reuse distance.

use delta_model::tiling::LayerTiling;
use delta_model::GpuSpec;

/// One scheduled CTA: grid coordinates plus its SM assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledCta {
    /// CTA-grid row.
    pub row: u64,
    /// CTA-grid column.
    pub col: u64,
    /// SM executing this CTA.
    pub sm: u32,
}

/// Column-wise scheduler over a layer's CTA grid.
#[derive(Debug, Clone)]
pub struct ColumnScheduler {
    rows: u64,
    cols: u64,
    num_sm: u32,
    batch_size: u64,
}

impl ColumnScheduler {
    /// Creates the schedule for `tiling` on `gpu` with `active_ctas`
    /// concurrent CTAs per SM.
    pub fn new(tiling: &LayerTiling, gpu: &GpuSpec, active_ctas: u32) -> ColumnScheduler {
        ColumnScheduler {
            rows: tiling.cta_rows(),
            cols: tiling.cta_columns(),
            num_sm: gpu.num_sm(),
            batch_size: u64::from(gpu.num_sm()) * u64::from(active_ctas.max(1)),
        }
    }

    /// Total CTAs.
    pub fn total_ctas(&self) -> u64 {
        self.rows * self.cols
    }

    /// CTAs that execute concurrently (one batch).
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Number of batches needed to drain one tile column.
    pub fn batches_per_column(&self) -> u64 {
        self.rows.div_ceil(self.batch_size)
    }

    /// Number of tile columns.
    pub fn columns(&self) -> u64 {
        self.cols
    }

    /// The CTAs of batch `batch_idx` within tile column `col`, in launch
    /// order. The final batch of a column may be short.
    pub fn batch(&self, col: u64, batch_idx: u64) -> Vec<ScheduledCta> {
        let start = batch_idx * self.batch_size;
        let end = (start + self.batch_size).min(self.rows);
        (start..end)
            .map(|row| ScheduledCta {
                row,
                col,
                sm: ((row - start) % u64::from(self.num_sm)) as u32,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_model::ConvLayer;

    fn sched(m_rows: u32, co: u32, active: u32) -> ColumnScheduler {
        // Construct a layer whose GEMM is m_rows*128 tall (1x1 conv over
        // 128-wide features makes the math exact).
        let l = ConvLayer::builder("s")
            .batch(m_rows)
            .input(8, 8, 16)
            .output_channels(co)
            .filter(1, 1)
            .build()
            .unwrap();
        let t = LayerTiling::new(&l);
        ColumnScheduler::new(&t, &GpuSpec::titan_xp(), active)
    }

    #[test]
    fn batches_cover_all_ctas_exactly_once() {
        let s = sched(10, 256, 2); // 10 rows of CTAs, 2 columns
        let mut seen = Vec::new();
        for col in 0..s.columns() {
            for b in 0..s.batches_per_column() {
                for cta in s.batch(col, b) {
                    seen.push((cta.row, cta.col));
                }
            }
        }
        let total = s.total_ctas() as usize;
        assert_eq!(seen.len(), total);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total, "no duplicates");
    }

    #[test]
    fn column_major_order() {
        let s = sched(10, 256, 1);
        assert_eq!(s.columns(), 2);
        let first = s.batch(0, 0);
        assert!(first.iter().all(|c| c.col == 0), "column 0 drains first");
    }

    #[test]
    fn round_robin_sm_assignment() {
        let s = sched(100, 32, 2);
        let b = s.batch(0, 0);
        assert_eq!(b[0].sm, 0);
        assert_eq!(b[1].sm, 1);
        assert_eq!(b[29].sm, 29);
        assert_eq!(b[30].sm, 0, "wraps after num_sm");
    }

    #[test]
    fn batch_size_scales_with_occupancy() {
        assert_eq!(sched(100, 32, 1).batch_size(), 30);
        assert_eq!(sched(100, 32, 2).batch_size(), 60);
        // Zero occupancy is clamped to 1.
        assert_eq!(sched(100, 32, 0).batch_size(), 30);
    }

    #[test]
    fn short_final_batch() {
        let s = sched(10, 32, 1); // 10 CTA rows, batch 30
        assert_eq!(s.batches_per_column(), 1);
        assert_eq!(s.batch(0, 0).len(), 10);
    }
}
