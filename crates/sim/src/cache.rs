//! Sectored set-associative cache model.
//!
//! GPU L1/L2 caches use 128 B lines split into four 32 B sectors: a miss
//! allocates the line but fills only the referenced sectors (§IV: "The
//! minimum memory transaction granularity is 32 B, which corresponds to a
//! single sector of one 128 B cache line"). Replacement is LRU within a
//! set.

use delta_model::{LINE_BYTES, SECTOR_BYTES};
use serde::{Deserialize, Serialize};

/// Running hit/miss statistics, in sector units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Line-granularity lookups.
    pub accesses: u64,
    /// Sectors found resident.
    pub sector_hits: u64,
    /// Sectors that had to be filled from the next level.
    pub sector_misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Sector miss rate (`misses / (hits + misses)`); 0 when idle.
    pub fn miss_rate(&self) -> f64 {
        let total = self.sector_hits + self.sector_misses;
        if total == 0 {
            0.0
        } else {
            self.sector_misses as f64 / total as f64
        }
    }

    /// Bytes requested from the next level (`misses × 32 B`).
    pub fn miss_bytes(&self) -> u64 {
        self.sector_misses * SECTOR_BYTES
    }

    /// Accumulates `other` into `self`. All four counters are plain
    /// sums, so merging is associative and commutative — per-shard
    /// statistics combine into exactly the totals a single walker over
    /// the same accesses would have counted.
    pub fn merge(&mut self, other: CacheStats) {
        self.accesses += other.accesses;
        self.sector_hits += other.sector_hits;
        self.sector_misses += other.sector_misses;
        self.evictions += other.evictions;
    }
}

/// A sectored, set-associative, LRU cache.
#[derive(Debug, Clone)]
pub struct SectoredCache {
    sets: usize,
    ways: usize,
    /// Line tag per (set, way); `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Valid-sector bitmask per (set, way).
    sector_valid: Vec<u8>,
    /// LRU timestamp per (set, way).
    stamp: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl SectoredCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity doesn't hold at least one full set of 128 B
    /// lines.
    pub fn new(capacity_bytes: u64, ways: usize) -> SectoredCache {
        let lines = (capacity_bytes / LINE_BYTES) as usize;
        assert!(
            lines >= ways && ways > 0,
            "cache of {capacity_bytes} B cannot hold a {ways}-way set"
        );
        let sets = (lines / ways).max(1);
        SectoredCache {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            sector_valid: vec![0; sets * ways],
            stamp: vec![0; sets * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.sector_valid.fill(0);
        self.stamp.fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Accesses `line` with the given sector mask; returns the mask of
    /// sectors that missed (to be requested from the next level). Missing
    /// sectors are filled; on a line miss the LRU way is evicted.
    pub fn access(&mut self, line: u64, sector_mask: u8) -> u8 {
        debug_assert!(sector_mask != 0, "empty access");
        self.tick += 1;
        self.stats.accesses += 1;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;

        // Hit path: line resident, fill any missing sectors.
        for w in 0..self.ways {
            let i = base + w;
            if self.tags[i] == line {
                let missed = sector_mask & !self.sector_valid[i];
                self.sector_valid[i] |= sector_mask;
                self.stamp[i] = self.tick;
                self.stats.sector_hits += u64::from((sector_mask & !missed).count_ones());
                self.stats.sector_misses += u64::from(missed.count_ones());
                return missed;
            }
        }

        // Miss path: evict LRU way.
        let mut victim = base;
        for w in 1..self.ways {
            if self.stamp[base + w] < self.stamp[victim] {
                victim = base + w;
            }
        }
        if self.tags[victim] != u64::MAX {
            self.stats.evictions += 1;
        }
        self.tags[victim] = line;
        self.sector_valid[victim] = sector_mask;
        self.stamp[victim] = self.tick;
        self.stats.sector_misses += u64::from(sector_mask.count_ones());
        sector_mask
    }

    /// Fills `line` without recording statistics — used to emulate the
    /// eviction pressure of traffic the sampling simulator skipped
    /// (unsimulated CTA batches/loops would have streamed unique data
    /// through this cache).
    pub fn pollute(&mut self, line: u64, sector_mask: u8) {
        self.tick += 1;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        let mut victim = base;
        for w in 0..self.ways {
            let i = base + w;
            if self.tags[i] == line {
                self.sector_valid[i] |= sector_mask;
                self.stamp[i] = self.tick;
                return;
            }
            if self.stamp[i] < self.stamp[victim] {
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.sector_valid[victim] = sector_mask;
        self.stamp[victim] = self.tick;
    }

    /// Whether `line` is resident with all of `sector_mask` valid
    /// (read-only probe; no statistics or LRU update).
    pub fn probe(&self, line: u64, sector_mask: u8) -> bool {
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        (0..self.ways).any(|w| {
            self.tags[base + w] == line
                && (self.sector_valid[base + w] & sector_mask) == sector_mask
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SectoredCache::new(4 * 1024, 4);
        assert_eq!(c.access(7, 0b0011), 0b0011, "cold: both sectors miss");
        assert_eq!(c.access(7, 0b0011), 0, "warm: full hit");
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.sector_misses, 2);
        assert_eq!(s.sector_hits, 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sector_granularity_fills() {
        let mut c = SectoredCache::new(4 * 1024, 4);
        c.access(3, 0b0001);
        // Same line, new sector: line hit but sector miss.
        assert_eq!(c.access(3, 0b0010), 0b0010);
        assert_eq!(c.access(3, 0b0011), 0, "both sectors now valid");
        assert_eq!(c.stats().miss_bytes(), 2 * 32);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways; lines 0,2,4 map to set 0.
        let mut c = SectoredCache::new(4 * LINE_BYTES, 2);
        assert_eq!(c.sets(), 2);
        c.access(0, 1);
        c.access(2, 1);
        c.access(0, 1); // refresh line 0
        c.access(4, 1); // evicts line 2 (LRU)
        assert!(c.probe(0, 1));
        assert!(!c.probe(2, 1));
        assert!(c.probe(4, 1));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_thrashing_produces_misses() {
        // Working set of 2x capacity, streamed twice: second pass still
        // misses (LRU worst case).
        let mut c = SectoredCache::new(64 * LINE_BYTES, 4);
        let lines: Vec<u64> = (0..128).collect();
        for &l in &lines {
            c.access(l, 0b1111);
        }
        let cold_misses = c.stats().sector_misses;
        for &l in &lines {
            c.access(l, 0b1111);
        }
        assert_eq!(
            c.stats().sector_misses,
            2 * cold_misses,
            "streaming 2x capacity through LRU re-misses everything"
        );
    }

    #[test]
    fn working_set_within_capacity_fully_hits() {
        let mut c = SectoredCache::new(64 * LINE_BYTES, 4);
        for l in 0..32u64 {
            c.access(l, 0b1111);
        }
        let misses_after_warm = c.stats().sector_misses;
        for l in 0..32u64 {
            assert_eq!(c.access(l, 0b1111), 0);
        }
        assert_eq!(c.stats().sector_misses, misses_after_warm);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = SectoredCache::new(4 * 1024, 4);
        c.access(1, 1);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.probe(1, 1));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn zero_capacity_panics() {
        let _ = SectoredCache::new(64, 4);
    }

    #[test]
    fn stats_merge_is_associative() {
        let mk = |a, h, m, e| CacheStats {
            accesses: a,
            sector_hits: h,
            sector_misses: m,
            evictions: e,
        };
        let parts = [mk(1, 2, 3, 4), mk(10, 20, 30, 40), mk(5, 0, 7, 0)];
        let mut left = parts[0];
        left.merge(parts[1]);
        left.merge(parts[2]);
        let mut right = parts[1];
        right.merge(parts[2]);
        let mut first = parts[0];
        first.merge(right);
        assert_eq!(left, first);
        assert_eq!(left.accesses, 16);
        assert_eq!(left.sector_misses, 40);
    }
}
