//! The simulated memory hierarchy: per-SM L1 caches, a shared L2, and
//! DRAM counters.
//!
//! Traffic accounting matches the profiler quantities the paper reports:
//!
//! * **L1 traffic** = L1 requests × request size (coalesced warp
//!   transactions, 128 B on Pascal / 32 B on Volta);
//! * **L2 traffic** = L1 sector misses × 32 B;
//! * **DRAM traffic** = L2 sector misses × 32 B (reads) plus streamed
//!   OFmap writes.

use crate::cache::{CacheStats, SectoredCache};
use crate::coalesce::{self, Transaction};
use delta_model::{GpuSpec, SECTOR_BYTES};
use serde::{Deserialize, Serialize};

/// Byte counters for one batch of accesses (used by the timing engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficDelta {
    /// Bytes through the L1 request path.
    pub l1_bytes: u64,
    /// Bytes requested from L2 (L1 miss fills).
    pub l2_bytes: u64,
    /// Bytes read from DRAM (L2 miss fills).
    pub dram_bytes: u64,
}

impl TrafficDelta {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: TrafficDelta) {
        self.l1_bytes += other.l1_bytes;
        self.l2_bytes += other.l2_bytes;
        self.dram_bytes += other.dram_bytes;
    }
}

/// The simulated L1s + L2 + DRAM counters for one device.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1s: Vec<SectoredCache>,
    l2: SectoredCache,
    l1_request_bytes: u32,
    totals: TrafficDelta,
    dram_write_bytes: u64,
    l2_write_bytes: u64,
    aging_cursor: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `gpu` (L1 4-way per SM, L2
    /// 16-way shared).
    pub fn new(gpu: &GpuSpec) -> MemoryHierarchy {
        MemoryHierarchy {
            l1s: (0..gpu.num_sm())
                .map(|_| SectoredCache::new(gpu.l1_bytes_per_sm(), 4))
                .collect(),
            l2: SectoredCache::new(gpu.l2_bytes(), 16),
            l1_request_bytes: gpu.l1_request_bytes(),
            totals: TrafficDelta::default(),
            dram_write_bytes: 0,
            l2_write_bytes: 0,
            aging_cursor: 0,
        }
    }

    /// Issues one warp's coalesced transactions from SM `sm`; returns the
    /// per-level byte deltas of this access.
    pub fn warp_load(&mut self, sm: usize, transactions: &[Transaction]) -> TrafficDelta {
        let mut delta = TrafficDelta {
            l1_bytes: coalesce::request_bytes(transactions, self.l1_request_bytes),
            ..TrafficDelta::default()
        };
        let idx = sm % self.l1s.len();
        let l1 = &mut self.l1s[idx];
        for t in transactions {
            let missed = l1.access(t.line, t.sector_mask);
            if missed != 0 {
                delta.l2_bytes += u64::from(missed.count_ones()) * SECTOR_BYTES;
                let dram_mask = self.l2.access(t.line, missed);
                delta.dram_bytes += u64::from(dram_mask.count_ones()) * SECTOR_BYTES;
            }
        }
        self.totals.add(delta);
        delta
    }

    /// Streams one warp's OFmap store transactions (epilogue). GPU global
    /// stores write through to L2 and drain to DRAM; they do not allocate
    /// in L1 and — for the streaming OFmap pattern — do not benefit from
    /// L2 residency, so both levels count the full sector volume.
    pub fn warp_store(&mut self, transactions: &[Transaction]) -> u64 {
        let bytes: u64 = transactions
            .iter()
            .map(|t| u64::from(t.sectors()) * SECTOR_BYTES)
            .sum();
        self.l2_write_bytes += bytes;
        self.dram_write_bytes += bytes;
        bytes
    }

    /// Emulates `bytes` of *unique* traffic streaming through the L2 —
    /// the eviction pressure of CTA batches / main loops the sampling
    /// simulator extrapolated instead of tracing. Does not touch
    /// statistics; only ages residency.
    pub fn age_l2(&mut self, bytes: u64) {
        let lines = bytes / delta_model::LINE_BYTES;
        for _ in 0..lines {
            self.aging_cursor += 1;
            // Distinct lines far above any real tensor address.
            self.l2.pollute((1 << 40) + self.aging_cursor, 0b1111);
        }
    }

    /// Cumulative read-traffic totals.
    pub fn totals(&self) -> TrafficDelta {
        self.totals
    }

    /// Cumulative DRAM write bytes (epilogue stores).
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_write_bytes
    }

    /// Cumulative L2 write bytes.
    pub fn l2_write_bytes(&self) -> u64 {
        self.l2_write_bytes
    }

    /// Aggregated L1 statistics across all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.l1s {
            let cs = c.stats();
            s.accesses += cs.accesses;
            s.sector_hits += cs.sector_hits;
            s.sector_misses += cs.sector_misses;
            s.evictions += cs.evictions;
        }
        s
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Number of modeled SMs (L1 instances).
    pub fn num_sm(&self) -> usize {
        self.l1s.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce_warp;

    fn warp(addrs: &[u64]) -> Vec<Transaction> {
        let opt: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        let mut out = Vec::new();
        coalesce_warp(&opt, &mut out);
        out
    }

    #[test]
    fn cold_access_reaches_dram() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        let d = h.warp_load(0, &t);
        assert_eq!(d.l1_bytes, 128);
        assert_eq!(d.l2_bytes, 128);
        assert_eq!(d.dram_bytes, 128);
    }

    #[test]
    fn repeat_access_hits_l1() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        h.warp_load(0, &t);
        let d = h.warp_load(0, &t);
        assert_eq!(d.l1_bytes, 128, "requests still issued");
        assert_eq!(d.l2_bytes, 0);
        assert_eq!(d.dram_bytes, 0);
    }

    #[test]
    fn cross_sm_reuse_hits_shared_l2() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        h.warp_load(0, &t);
        // Different SM: private L1 misses, shared L2 hits.
        let d = h.warp_load(1, &t);
        assert_eq!(d.l2_bytes, 128);
        assert_eq!(d.dram_bytes, 0, "L2 is shared across SMs");
    }

    #[test]
    fn volta_granularity_counts_sectors() {
        let mut h = MemoryHierarchy::new(&GpuSpec::v100());
        // One 32 B sector referenced: Pascal would bill a 128 B request,
        // Volta bills 32 B.
        let t = warp(&[0, 4, 8]);
        let d = h.warp_load(0, &t);
        assert_eq!(d.l1_bytes, 32);
    }

    #[test]
    fn stores_stream_to_dram() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        let b = h.warp_store(&t);
        assert_eq!(b, 128);
        assert_eq!(h.dram_write_bytes(), 128);
        assert_eq!(h.l2_write_bytes(), 128);
        assert_eq!(h.totals(), TrafficDelta::default(), "reads unaffected");
    }

    #[test]
    fn conservation_l2_accesses_equal_l1_misses() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        // A spread of accesses from several SMs.
        for sm in 0..4usize {
            for i in 0..64u64 {
                let t = warp(&[(i * 128) + sm as u64 * 4, (i * 128) + 64]);
                h.warp_load(sm, &t);
            }
        }
        let l1 = h.l1_stats();
        let l2 = h.l2_stats();
        assert_eq!(
            l1.sector_misses,
            l2.sector_hits + l2.sector_misses,
            "every L1 sector miss becomes exactly one L2 sector request"
        );
        assert_eq!(h.totals().l2_bytes, l1.miss_bytes());
        assert_eq!(h.totals().dram_bytes, l2.miss_bytes());
    }
}
