//! The simulated memory hierarchy: per-SM L1 caches, a shared L2, and
//! DRAM counters.
//!
//! Traffic accounting matches the profiler quantities the paper reports:
//!
//! * **L1 traffic** = L1 requests × request size (coalesced warp
//!   transactions, 128 B on Pascal / 32 B on Volta);
//! * **L2 traffic** = L1 sector misses × 32 B;
//! * **DRAM traffic** = L2 sector misses × 32 B (reads) plus streamed
//!   OFmap writes.

use crate::cache::{CacheStats, SectoredCache};
use crate::coalesce::{self, Transaction};
use delta_model::{GpuSpec, SECTOR_BYTES};
use serde::{Deserialize, Serialize};

/// Byte counters for one batch of accesses (used by the timing engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficDelta {
    /// Bytes through the L1 request path.
    pub l1_bytes: u64,
    /// Bytes requested from L2 (L1 miss fills).
    pub l2_bytes: u64,
    /// Bytes read from DRAM (L2 miss fills).
    pub dram_bytes: u64,
}

impl TrafficDelta {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: TrafficDelta) {
        self.l1_bytes += other.l1_bytes;
        self.l2_bytes += other.l2_bytes;
        self.dram_bytes += other.dram_bytes;
    }
}

/// Associatively mergeable summary of one hierarchy's activity: every
/// counter a [`crate::sim::Measurement`] needs, with none of the
/// residency state (tags, LRU stamps) that cannot be combined across
/// independent walkers.
///
/// This is the merge unit behind sharded simulation: each shard runs its
/// own [`MemoryHierarchy`] over a disjoint column set, snapshots it, and
/// the per-shard snapshots [`merge`](HierarchyStats::merge) into exactly
/// the totals a single worker replaying the same accesses would have
/// counted — all fields are plain `u64` sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Cumulative read-traffic byte totals (L1/L2/DRAM).
    pub reads: TrafficDelta,
    /// Aggregated L1 hit/miss statistics across all SMs.
    pub l1: CacheStats,
    /// L2 hit/miss statistics.
    pub l2: CacheStats,
    /// Write bytes through L2 (epilogue stores).
    pub l2_write_bytes: u64,
    /// Write bytes drained to DRAM (epilogue stores).
    pub dram_write_bytes: u64,
    /// Unique bytes streamed through the L2 by [`MemoryHierarchy::age_l2`]
    /// on behalf of extrapolated (unsimulated) batches and loops — the
    /// steady-state aging pressure, carried so merged shards account for
    /// the same eviction volume the unsharded walker applied.
    pub aged_l2_bytes: u64,
}

impl HierarchyStats {
    /// Accumulates `other` into `self`. Associative and commutative:
    /// every field is an unsigned sum, so any merge tree over the same
    /// shard set yields identical totals.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.reads.add(other.reads);
        self.l1.merge(other.l1);
        self.l2.merge(other.l2);
        self.l2_write_bytes += other.l2_write_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.aged_l2_bytes += other.aged_l2_bytes;
    }

    /// Field-wise `self − baseline`: the activity counted *after* the
    /// `baseline` snapshot was taken. Row-level sharding uses this to
    /// drop a segment's warm-up batch from its contribution — the
    /// counters are monotonic, so the delta of a later snapshot against
    /// an earlier one of the same hierarchy never underflows.
    pub fn delta_since(&self, baseline: &HierarchyStats) -> HierarchyStats {
        let sub = |a: CacheStats, b: CacheStats| CacheStats {
            accesses: a.accesses - b.accesses,
            sector_hits: a.sector_hits - b.sector_hits,
            sector_misses: a.sector_misses - b.sector_misses,
            evictions: a.evictions - b.evictions,
        };
        HierarchyStats {
            reads: TrafficDelta {
                l1_bytes: self.reads.l1_bytes - baseline.reads.l1_bytes,
                l2_bytes: self.reads.l2_bytes - baseline.reads.l2_bytes,
                dram_bytes: self.reads.dram_bytes - baseline.reads.dram_bytes,
            },
            l1: sub(self.l1, baseline.l1),
            l2: sub(self.l2, baseline.l2),
            l2_write_bytes: self.l2_write_bytes - baseline.l2_write_bytes,
            dram_write_bytes: self.dram_write_bytes - baseline.dram_write_bytes,
            aged_l2_bytes: self.aged_l2_bytes - baseline.aged_l2_bytes,
        }
    }
}

/// A memory hierarchy whose measured statistics can be extracted as an
/// associatively mergeable snapshot — the contract sharded (and, later,
/// multi-GPU) simulation builds on: run N independent hierarchies over
/// disjoint work partitions, then combine their [`HierarchyStats`]
/// exactly.
pub trait MergeableHierarchy {
    /// The mergeable summary of everything this hierarchy has counted.
    fn snapshot(&self) -> HierarchyStats;
}

/// The simulated L1s + L2 + DRAM counters for one device.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1s: Vec<SectoredCache>,
    l2: SectoredCache,
    l1_request_bytes: u32,
    totals: TrafficDelta,
    dram_write_bytes: u64,
    l2_write_bytes: u64,
    aging_cursor: u64,
    aged_l2_bytes: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `gpu` (L1 4-way per SM, L2
    /// 16-way shared).
    pub fn new(gpu: &GpuSpec) -> MemoryHierarchy {
        MemoryHierarchy {
            l1s: (0..gpu.num_sm())
                .map(|_| SectoredCache::new(gpu.l1_bytes_per_sm(), 4))
                .collect(),
            l2: SectoredCache::new(gpu.l2_bytes(), 16),
            l1_request_bytes: gpu.l1_request_bytes(),
            totals: TrafficDelta::default(),
            dram_write_bytes: 0,
            l2_write_bytes: 0,
            aging_cursor: 0,
            aged_l2_bytes: 0,
        }
    }

    /// Issues one warp's coalesced transactions from SM `sm`; returns the
    /// per-level byte deltas of this access.
    pub fn warp_load(&mut self, sm: usize, transactions: &[Transaction]) -> TrafficDelta {
        let mut delta = TrafficDelta {
            l1_bytes: coalesce::request_bytes(transactions, self.l1_request_bytes),
            ..TrafficDelta::default()
        };
        let idx = sm % self.l1s.len();
        let l1 = &mut self.l1s[idx];
        for t in transactions {
            let missed = l1.access(t.line, t.sector_mask);
            if missed != 0 {
                delta.l2_bytes += u64::from(missed.count_ones()) * SECTOR_BYTES;
                let dram_mask = self.l2.access(t.line, missed);
                delta.dram_bytes += u64::from(dram_mask.count_ones()) * SECTOR_BYTES;
            }
        }
        self.totals.add(delta);
        delta
    }

    /// Streams one warp's OFmap store transactions (epilogue). GPU global
    /// stores write through to L2 and drain to DRAM; they do not allocate
    /// in L1 and — for the streaming OFmap pattern — do not benefit from
    /// L2 residency, so both levels count the full sector volume.
    pub fn warp_store(&mut self, transactions: &[Transaction]) -> u64 {
        let bytes: u64 = transactions
            .iter()
            .map(|t| u64::from(t.sectors()) * SECTOR_BYTES)
            .sum();
        self.l2_write_bytes += bytes;
        self.dram_write_bytes += bytes;
        bytes
    }

    /// Emulates `bytes` of *unique* traffic streaming through the L2 —
    /// the eviction pressure of CTA batches / main loops the sampling
    /// simulator extrapolated instead of tracing. Does not touch
    /// statistics; only ages residency.
    pub fn age_l2(&mut self, bytes: u64) {
        self.count_aged_l2(bytes);
        let lines = bytes / delta_model::LINE_BYTES;
        for _ in 0..lines {
            self.aging_cursor += 1;
            // Distinct lines far above any real tensor address.
            self.l2.pollute((1 << 40) + self.aging_cursor, 0b1111);
        }
    }

    /// Records `bytes` of aged-L2 volume in the mergeable statistics
    /// *without* touching residency. For walkers that discard the
    /// hierarchy right after (a sharded column's end-of-column
    /// extrapolation), the [`MemoryHierarchy::age_l2`] pollution would be
    /// pure wasted work — nothing ever observes the evictions.
    pub fn count_aged_l2(&mut self, bytes: u64) {
        self.aged_l2_bytes += bytes;
    }

    /// Cumulative read-traffic totals.
    pub fn totals(&self) -> TrafficDelta {
        self.totals
    }

    /// Cumulative DRAM write bytes (epilogue stores).
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_write_bytes
    }

    /// Cumulative L2 write bytes.
    pub fn l2_write_bytes(&self) -> u64 {
        self.l2_write_bytes
    }

    /// Aggregated L1 statistics across all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.l1s {
            s.merge(c.stats());
        }
        s
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Number of modeled SMs (L1 instances).
    pub fn num_sm(&self) -> usize {
        self.l1s.len()
    }
}

impl MergeableHierarchy for MemoryHierarchy {
    fn snapshot(&self) -> HierarchyStats {
        HierarchyStats {
            reads: self.totals,
            l1: self.l1_stats(),
            l2: self.l2_stats(),
            l2_write_bytes: self.l2_write_bytes,
            dram_write_bytes: self.dram_write_bytes,
            aged_l2_bytes: self.aged_l2_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce_warp;

    fn warp(addrs: &[u64]) -> Vec<Transaction> {
        let opt: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        let mut out = Vec::new();
        coalesce_warp(&opt, &mut out);
        out
    }

    #[test]
    fn cold_access_reaches_dram() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        let d = h.warp_load(0, &t);
        assert_eq!(d.l1_bytes, 128);
        assert_eq!(d.l2_bytes, 128);
        assert_eq!(d.dram_bytes, 128);
    }

    #[test]
    fn repeat_access_hits_l1() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        h.warp_load(0, &t);
        let d = h.warp_load(0, &t);
        assert_eq!(d.l1_bytes, 128, "requests still issued");
        assert_eq!(d.l2_bytes, 0);
        assert_eq!(d.dram_bytes, 0);
    }

    #[test]
    fn cross_sm_reuse_hits_shared_l2() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        h.warp_load(0, &t);
        // Different SM: private L1 misses, shared L2 hits.
        let d = h.warp_load(1, &t);
        assert_eq!(d.l2_bytes, 128);
        assert_eq!(d.dram_bytes, 0, "L2 is shared across SMs");
    }

    #[test]
    fn volta_granularity_counts_sectors() {
        let mut h = MemoryHierarchy::new(&GpuSpec::v100());
        // One 32 B sector referenced: Pascal would bill a 128 B request,
        // Volta bills 32 B.
        let t = warp(&[0, 4, 8]);
        let d = h.warp_load(0, &t);
        assert_eq!(d.l1_bytes, 32);
    }

    #[test]
    fn stores_stream_to_dram() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        let t = warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>());
        let b = h.warp_store(&t);
        assert_eq!(b, 128);
        assert_eq!(h.dram_write_bytes(), 128);
        assert_eq!(h.l2_write_bytes(), 128);
        assert_eq!(h.totals(), TrafficDelta::default(), "reads unaffected");
    }

    #[test]
    fn sharded_snapshots_merge_to_single_walker_totals() {
        // The same access stream walked by one hierarchy vs. split across
        // two independent hierarchies (disjoint address halves, as
        // disjoint-column shards produce): merged snapshots must equal
        // the single walker's snapshot exactly.
        let gpu = GpuSpec::titan_xp();
        let streams: [Vec<Vec<Transaction>>; 2] = [
            (0..64)
                .map(|i| warp(&[i * 128, i * 128 + 64]))
                .collect::<Vec<_>>(),
            (1000..1064)
                .map(|i| warp(&[i * 128, i * 128 + 32]))
                .collect::<Vec<_>>(),
        ];
        let mut single = MemoryHierarchy::new(&gpu);
        for s in &streams {
            for t in s {
                single.warp_load(0, t);
            }
            single.warp_store(&streams[0][0]);
            single.age_l2(4096);
        }
        let mut merged = HierarchyStats::default();
        for s in &streams {
            let mut h = MemoryHierarchy::new(&gpu);
            for t in s {
                h.warp_load(0, t);
            }
            h.warp_store(&streams[0][0]);
            h.age_l2(4096);
            merged.merge(&h.snapshot());
        }
        // The two halves touch disjoint lines and each fits in cache, so
        // partitioning does not change hit/miss outcomes.
        assert_eq!(merged, single.snapshot());
        assert_eq!(merged.aged_l2_bytes, 8192);
        // Each store streams one line's two referenced sectors (2×32 B).
        assert_eq!(merged.dram_write_bytes, 2 * 64);
    }

    #[test]
    fn conservation_l2_accesses_equal_l1_misses() {
        let mut h = MemoryHierarchy::new(&GpuSpec::titan_xp());
        // A spread of accesses from several SMs.
        for sm in 0..4usize {
            for i in 0..64u64 {
                let t = warp(&[(i * 128) + sm as u64 * 4, (i * 128) + 64]);
                h.warp_load(sm, &t);
            }
        }
        let l1 = h.l1_stats();
        let l2 = h.l2_stats();
        assert_eq!(
            l1.sector_misses,
            l2.sector_hits + l2.sector_misses,
            "every L1 sector miss becomes exactly one L2 sector request"
        );
        assert_eq!(h.totals().l2_bytes, l1.miss_bytes());
        assert_eq!(h.totals().dram_bytes, l2.miss_bytes());
    }
}
