//! Cycle accounting for the software-pipelined GEMM main loop, driven by
//! *measured* per-loop traffic.
//!
//! The analytical model spreads a layer's traffic uniformly over its main
//! loops; the simulator knows the actual per-loop volumes, which vary
//! (warm-up loops miss more, steady-state loops hit). Per batch-loop the
//! engine charges the slowest of:
//!
//! * the compute/SMEM throughput of the active CTAs
//!   (`active × max(t_CS, t_SAS)`),
//! * each memory level's transfer time for the loop's measured bytes
//!   (per-SM share of device bandwidth), and
//! * the unhidden global-load latency when too few CTAs are resident.
//!
//! This mirrors the structure of the paper's Fig. 10 cases but consumes
//! simulated traffic instead of modeled traffic, making the "measured
//! cycles" quantity independent of the model's traffic equations.

use crate::hierarchy::TrafficDelta;
use crate::tensorcore::Datapath;
use delta_model::tiling::CtaTile;
use delta_model::{GpuSpec, BYTES_PER_ELEMENT};

/// Per-SM cycle accumulator for one layer's simulation.
#[derive(Debug, Clone)]
pub struct TimingEngine {
    /// Compute time per CTA main loop (Eq. 13 structure).
    t_cs: f64,
    /// SMEM time per CTA main loop (Eq. 12 structure).
    t_sas: f64,
    /// Per-SM bandwidth shares in bytes/clock.
    l1_bpc: f64,
    l2_bpc_share: f64,
    dram_bpc_share: f64,
    lat_l1: f64,
    lat_l2: f64,
    lat_dram: f64,
    num_sm: f64,
    dram_bpc_total: f64,
    cycles: f64,
}

impl TimingEngine {
    /// Prepares the engine for `tile` on `gpu`, on the FFMA datapath
    /// (the paper's configuration; conv layers always take this path).
    pub fn new(gpu: &GpuSpec, tile: CtaTile) -> TimingEngine {
        TimingEngine::with_datapath(gpu, tile, Datapath::Ffma)
    }

    /// Prepares the engine for `tile` on `gpu` with an explicit compute
    /// datapath: the `t_CS` term comes from
    /// [`Datapath::loop_compute_clks`] (FFMA or MMA-quantized tensor
    /// cores); every other term is datapath-independent.
    pub fn with_datapath(gpu: &GpuSpec, tile: CtaTile, datapath: Datapath) -> TimingEngine {
        let elem = BYTES_PER_ELEMENT as f64;
        let smem_store = f64::from(tile.blk_m() + tile.blk_n()) * f64::from(tile.blk_k()) * elem;
        let smem_load = f64::from(tile.warp_m() + tile.warp_n())
            * f64::from(tile.blk_k())
            * f64::from(tile.num_warps())
            * elem;
        let num_sm = f64::from(gpu.num_sm());
        TimingEngine {
            t_cs: datapath.loop_compute_clks(gpu, tile),
            t_sas: smem_store / gpu.smem_st_bytes_per_clk()
                + smem_load / gpu.smem_ld_bytes_per_clk(),
            l1_bpc: gpu.l1_bytes_per_clk(),
            l2_bpc_share: gpu.l2_bytes_per_clk() / num_sm,
            dram_bpc_share: gpu.dram_bytes_per_clk() / num_sm,
            lat_l1: gpu.lat_l1_clks(),
            lat_l2: gpu.lat_l2_clks(),
            lat_dram: gpu.lat_dram_clks(),
            num_sm,
            dram_bpc_total: gpu.dram_bytes_per_clk(),
            cycles: 0.0,
        }
    }

    /// Charges one batch-wide main-loop iteration.
    ///
    /// `traffic` is the batch's measured byte delta for this loop,
    /// `ctas_in_batch` how many CTAs participated, and `active_per_sm`
    /// the residency. Returns the clocks charged.
    pub fn charge_loop(
        &mut self,
        traffic: TrafficDelta,
        ctas_in_batch: u64,
        active_per_sm: u32,
    ) -> f64 {
        if ctas_in_batch == 0 {
            return 0.0;
        }
        // An underfilled batch cannot stack `active_per_sm` CTAs on every
        // SM; the busiest SM holds ceil(ctas / num_sm).
        let busiest = (ctas_in_batch as f64 / self.num_sm).ceil();
        let active = f64::from(active_per_sm.max(1)).min(busiest).max(1.0);
        // Per-SM byte volumes this loop (batch volume spread over SMs).
        let sms_used = (ctas_in_batch as f64 / active).min(self.num_sm).max(1.0);
        let l1 = traffic.l1_bytes as f64 / sms_used;
        let l2 = traffic.l2_bytes as f64 / sms_used;
        let dram = traffic.dram_bytes as f64 / sms_used;

        // Throughput component: the resident CTAs time-share the SM.
        let throughput = active * self.t_cs.max(self.t_sas);
        // Bandwidth components.
        let bw = (l1 / self.l1_bpc)
            .max(l2 / self.l2_bpc_share)
            .max(dram / self.dram_bpc_share);
        // Latency component: one CTA's load chain must be hidden by the
        // other residents; with `active` CTAs the exposed fraction is
        // 1/active.
        let gls = (self.lat_l1 + l1 / (active * self.l1_bpc))
            .max(self.lat_l2 + l2 / (active * self.l2_bpc_share))
            .max(self.lat_dram + dram / (active * self.dram_bpc_share))
            / active;

        let t = throughput.max(bw).max(gls);
        self.cycles += t;
        t
    }

    /// Charges one batch's epilogue: every CTA writes its `blkM × blkN`
    /// outputs through the DRAM channel (Eq. 15 structure, with the
    /// measured store volume).
    pub fn charge_epilogue(&mut self, store_bytes: u64) -> f64 {
        let t = store_bytes as f64 / self.dram_bpc_total;
        self.cycles += t;
        t
    }

    /// Charges the first batch's prologue (later prologues overlap
    /// predecessors' main loops).
    pub fn charge_prologue(&mut self, input_tile_bytes: f64) -> f64 {
        let t = self.lat_dram + input_tile_bytes / self.dram_bpc_share;
        self.cycles += t;
        t
    }

    /// Scales the accumulated time by `factor` (used when batches are
    /// sampled and the remainder extrapolated).
    pub fn scale(&mut self, factor: f64) {
        self.cycles *= factor;
    }

    /// Adds externally computed cycles (extrapolation).
    pub fn add_cycles(&mut self, clks: f64) {
        self.cycles += clks;
    }

    /// Total accumulated clocks.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// The per-loop compute time (for tests and diagnostics).
    pub fn t_cs(&self) -> f64 {
        self.t_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TimingEngine {
        TimingEngine::new(&GpuSpec::titan_xp(), CtaTile::LARGE)
    }

    #[test]
    fn compute_bound_loop_charges_active_times_tcs() {
        let mut e = engine();
        let tiny = TrafficDelta {
            l1_bytes: 64,
            l2_bytes: 0,
            dram_bytes: 0,
        };
        let t = e.charge_loop(tiny, 60, 2);
        assert!((t - 2.0 * e.t_cs()).abs() < 1.0, "t={t} tcs={}", e.t_cs());
    }

    #[test]
    fn heavy_traffic_switches_to_bandwidth_bound() {
        let mut e = engine();
        let heavy = TrafficDelta {
            l1_bytes: 0,
            l2_bytes: 0,
            dram_bytes: 40_000_000,
        };
        let t = e.charge_loop(heavy, 60, 2);
        let share = 450.0 / 1.58 / 30.0;
        let expect = 40_000_000.0 / 30.0 / share;
        assert!((t - expect).abs() / expect < 0.05, "{t} vs {expect}");
    }

    #[test]
    fn single_cta_exposes_latency() {
        let mut e = engine();
        let none = TrafficDelta::default();
        let t = e.charge_loop(none, 1, 1);
        // With one CTA on one SM nothing hides the DRAM latency floor...
        // unless compute itself is longer (t_cs = 1024 > 500 here).
        assert!(t >= e.t_cs());
        // Make compute cheap: a faster GPU flips to the latency floor.
        let fast = GpuSpec::titan_xp()
            .to_builder()
            .mac_gflops(12134.0 * 8.0)
            .build()
            .unwrap();
        let mut e2 = TimingEngine::new(&fast, CtaTile::LARGE);
        let t2 = e2.charge_loop(none, 1, 1);
        assert!(t2 >= 500.0, "latency floor: {t2}");
    }

    #[test]
    fn cycles_accumulate_and_scale() {
        let mut e = engine();
        e.charge_loop(TrafficDelta::default(), 60, 2);
        e.charge_epilogue(128 * 128 * 4 * 60);
        let c = e.cycles();
        assert!(c > 0.0);
        e.scale(2.0);
        assert!((e.cycles() - 2.0 * c).abs() < 1e-9);
        e.add_cycles(10.0);
        assert!((e.cycles() - (2.0 * c + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn tensor_core_datapath_shrinks_only_the_compute_term() {
        let gpu = GpuSpec::v100_tensor();
        let ffma = TimingEngine::new(&gpu, CtaTile::LARGE);
        let mma = Datapath::select(&gpu, delta_model::LayerKind::Gemm { m: 1, n: 1, k: 1 });
        let tc = TimingEngine::with_datapath(&gpu, CtaTile::LARGE, mma);
        assert!(tc.t_cs() < ffma.t_cs());
        // A pure-bandwidth loop charges identically on both datapaths.
        let heavy = TrafficDelta {
            l1_bytes: 0,
            l2_bytes: 0,
            dram_bytes: 400_000_000,
        };
        let mut a = TimingEngine::new(&gpu, CtaTile::LARGE);
        let mut b = TimingEngine::with_datapath(&gpu, CtaTile::LARGE, mma);
        assert_eq!(a.charge_loop(heavy, 168, 2), b.charge_loop(heavy, 168, 2));
    }

    #[test]
    fn empty_batch_charges_nothing() {
        let mut e = engine();
        assert_eq!(e.charge_loop(TrafficDelta::default(), 0, 2), 0.0);
        assert_eq!(e.cycles(), 0.0);
    }
}
