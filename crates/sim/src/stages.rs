//! Composable simulation stages: one CTA batch as a self-contained unit
//! of work.
//!
//! The simulator pipeline is four stages, each previously inlined in one
//! monolithic `Simulator::run` loop and now explicit:
//!
//! 1. **trace** — [`CtaTrace`] generates the addresses each CTA's warps
//!    touch in a main-loop iteration (paper Fig. 5 im2col layout);
//! 2. **coalesce** — [`coalesce::coalesce_warp`] merges each warp's 32
//!    references into device-granularity transactions;
//! 3. **hierarchy** — [`MemoryHierarchy::warp_load`] runs the
//!    transactions through the sectored L1/L2 models and counts
//!    per-level bytes;
//! 4. **timing** — [`TimingEngine::charge_loop`] converts the measured
//!    per-loop traffic into cycles through the paper's Fig. 10 cases.
//!
//! [`CtaBatch`] owns one scheduled batch's trip through all four stages
//! (including steady-state loop extrapolation and the epilogue store
//! stage), so the orchestrator in [`crate::sim`] only sequences batches,
//! columns, and cross-batch extrapolation. The memory hierarchy and the
//! timing engine remain shared *inputs* — cache residency deliberately
//! persists across batches (that is the physics being simulated) — but
//! all per-batch state lives here.

use crate::coalesce::{self, Transaction};
use crate::hierarchy::{MemoryHierarchy, TrafficDelta};
use crate::sched::ScheduledCta;
use crate::tensor::TensorMap;
use crate::timing::TimingEngine;
use crate::trace::CtaTrace;
use delta_model::tiling::CtaTile;
use delta_model::WARP_SIZE;
use serde::{Deserialize, Serialize};

/// Measured quantities of one simulated CTA batch.
///
/// Serializable because batch stats ride inside the fleet wire types
/// (`SegmentReplay`): every field is an integer, a flag, or an f64 that
/// the vendored JSON writer round-trips bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Per-level read-traffic bytes of the batch's main loops.
    pub traffic: TrafficDelta,
    /// Epilogue OFmap store bytes.
    pub store_bytes: u64,
    /// Cycles charged for the batch (loops + epilogue).
    pub cycles: f64,
    /// Whether main-loop sampling/extrapolation was used.
    pub loop_extrapolated: bool,
}

/// Per-batch simulation controls (the batch-relevant slice of
/// `SimConfig`).
#[derive(Debug, Clone, Copy)]
pub struct BatchLimits {
    /// Simulate at most this many main-loop iterations, extrapolating
    /// the rest from the steady-state tail.
    pub max_loops: Option<u64>,
    /// Generate and issue the epilogue's OFmap stores.
    pub simulate_stores: bool,
}

/// One scheduled CTA batch, ready to run through the
/// trace → coalesce → hierarchy → timing pipeline.
#[derive(Debug)]
pub struct CtaBatch<'a> {
    map: &'a TensorMap,
    tile: CtaTile,
    ctas: Vec<ScheduledCta>,
    main_loops: u64,
    active_ctas: u32,
}

impl<'a> CtaBatch<'a> {
    /// Binds a scheduled batch to its layer context.
    pub fn new(
        map: &'a TensorMap,
        tile: CtaTile,
        ctas: Vec<ScheduledCta>,
        main_loops: u64,
        active_ctas: u32,
    ) -> CtaBatch<'a> {
        CtaBatch {
            map,
            tile,
            ctas,
            main_loops,
            active_ctas,
        }
    }

    /// Number of CTAs in the batch.
    pub fn len(&self) -> u64 {
        self.ctas.len() as u64
    }

    /// Whether the batch holds no CTAs.
    pub fn is_empty(&self) -> bool {
        self.ctas.is_empty()
    }

    /// Stage 1: builds each CTA's address tracer.
    fn traces(&self) -> Vec<(CtaTrace, u32)> {
        self.ctas
            .iter()
            .map(|c| (CtaTrace::new(self.map, self.tile, c.row, c.col), c.sm))
            .collect()
    }

    /// Runs the batch through all stages, mutating the shared hierarchy
    /// and timing state, and returns the batch's measured stats.
    ///
    /// `tx_buf` is a caller-provided scratch buffer so the per-warp
    /// transaction vector is allocated once per layer, not per warp.
    ///
    /// `charge_log`, when provided, records every cycle charge this
    /// batch makes against `timing`, in charge order. The timing
    /// engine's charges are pure functions of their arguments, so
    /// folding a column's logs in batch order from zero reproduces that
    /// column's `TimingEngine::cycles()` bitwise — row-level sharding
    /// uses this to rebuild the sequential column's f64 accumulation
    /// order from segments replayed on different workers.
    pub fn simulate(
        &self,
        hier: &mut MemoryHierarchy,
        timing: &mut TimingEngine,
        limits: BatchLimits,
        tx_buf: &mut Vec<Transaction>,
        mut charge_log: Option<&mut Vec<f64>>,
    ) -> BatchStats {
        let mut stats = BatchStats::default();
        let mut traces = self.traces();
        let sim_loops = limits
            .max_loops
            .map_or(self.main_loops, |m| self.main_loops.min(m.max(2)));
        let mut tail = TailAverager::default();

        for loop_idx in 0..sim_loops {
            // Stages 2+3: coalesce each warp and charge the hierarchy.
            let mut loop_delta = TrafficDelta::default();
            for (trace, sm) in &mut traces {
                let sm = *sm as usize;
                trace.for_each_warp(loop_idx, |warp| {
                    coalesce::coalesce_warp(warp, tx_buf);
                    loop_delta.add(hier.warp_load(sm, tx_buf));
                });
            }
            // Stage 4: convert this loop's measured traffic to cycles.
            let t = timing.charge_loop(loop_delta, self.len(), self.active_ctas);
            if let Some(log) = charge_log.as_deref_mut() {
                log.push(t);
            }
            stats.cycles += t;
            stats.traffic.add(loop_delta);
            if loop_idx >= sim_loops / 2 {
                tail.push(loop_delta, t);
            }
        }

        if sim_loops < self.main_loops {
            let (avg_delta, avg_t) = tail.average();
            let rem = (self.main_loops - sim_loops) as f64;
            stats.traffic.l1_bytes += (avg_delta.0 * rem) as u64;
            stats.traffic.l2_bytes += (avg_delta.1 * rem) as u64;
            stats.traffic.dram_bytes += (avg_delta.2 * rem) as u64;
            stats.cycles += avg_t * rem;
            timing.add_cycles(avg_t * rem);
            if let Some(log) = charge_log.as_deref_mut() {
                log.push(avg_t * rem);
            }
            // The skipped loops would have streamed this much unique data
            // through L2; age it so later batches and columns see
            // realistic residency.
            hier.age_l2((avg_delta.1 * rem) as u64);
            stats.loop_extrapolated = true;
        }

        if limits.simulate_stores {
            stats.store_bytes = self.epilogue(hier, tx_buf);
            let t = timing.charge_epilogue(stats.store_bytes);
            if let Some(log) = charge_log {
                log.push(t);
            }
            stats.cycles += t;
        }
        stats
    }

    /// Epilogue stage: generates and issues the batch's OFmap stores;
    /// returns the byte volume.
    fn epilogue(&self, hier: &mut MemoryHierarchy, tx_buf: &mut Vec<Transaction>) -> u64 {
        let mut warp = vec![None; WARP_SIZE as usize];
        let mut bytes = 0u64;
        for cta in &self.ctas {
            let m0 = cta.row * u64::from(self.tile.blk_m());
            let n0 = cta.col * u64::from(self.tile.blk_n());
            for mi in 0..u64::from(self.tile.blk_m()) {
                let m = m0 + mi;
                for n_chunk in (0..u64::from(self.tile.blk_n())).step_by(WARP_SIZE as usize) {
                    for lane in 0..WARP_SIZE {
                        warp[lane as usize] = self.map.ofmap_addr(m, n0 + n_chunk + lane);
                    }
                    coalesce::coalesce_warp(&warp, tx_buf);
                    bytes += hier.warp_store(tx_buf);
                }
            }
        }
        bytes
    }
}

/// Running average of the steady-state tail of a batch's loops.
#[derive(Debug, Default)]
struct TailAverager {
    n: f64,
    l1: f64,
    l2: f64,
    dram: f64,
    cycles: f64,
}

impl TailAverager {
    fn push(&mut self, d: TrafficDelta, t: f64) {
        self.n += 1.0;
        self.l1 += d.l1_bytes as f64;
        self.l2 += d.l2_bytes as f64;
        self.dram += d.dram_bytes as f64;
        self.cycles += t;
    }

    fn average(&self) -> ((f64, f64, f64), f64) {
        let n = self.n.max(1.0);
        ((self.l1 / n, self.l2 / n, self.dram / n), self.cycles / n)
    }
}

/// Steady-state summary of a column's simulated batches: the per-batch
/// mean past warm-up, used to extrapolate unsimulated batches and to age
/// the L2 by the traffic they would have streamed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteadyState {
    /// Mean L1 bytes per steady batch.
    pub l1_bytes: f64,
    /// Mean L2 bytes per steady batch.
    pub l2_bytes: f64,
    /// Mean DRAM read bytes per steady batch.
    pub dram_bytes: f64,
    /// Mean store bytes per steady batch.
    pub store_bytes: f64,
    /// Mean cycles per steady batch.
    pub cycles: f64,
}

impl SteadyState {
    /// Computes the steady state of `simulated`, skipping the first
    /// (cold) batch when more are available.
    pub fn of(simulated: &[BatchStats]) -> SteadyState {
        if simulated.is_empty() {
            return SteadyState::default();
        }
        let steady = if simulated.len() > 1 {
            &simulated[1..]
        } else {
            simulated
        };
        // Average over the batches actually summed — not `simulated`'s
        // full length, which silently shrank the mean by (n-1)/n.
        let n = steady.len() as f64;
        SteadyState {
            l1_bytes: steady
                .iter()
                .map(|b| b.traffic.l1_bytes as f64)
                .sum::<f64>()
                / n,
            l2_bytes: steady
                .iter()
                .map(|b| b.traffic.l2_bytes as f64)
                .sum::<f64>()
                / n,
            dram_bytes: steady
                .iter()
                .map(|b| b.traffic.dram_bytes as f64)
                .sum::<f64>()
                / n,
            store_bytes: steady.iter().map(|b| b.store_bytes as f64).sum::<f64>() / n,
            cycles: steady.iter().map(|b| b.cycles).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ColumnScheduler;
    use crate::tensor::TensorMap;
    use delta_model::tiling::LayerTiling;
    use delta_model::{ConvLayer, GpuSpec};

    fn layer() -> ConvLayer {
        ConvLayer::builder("stage_test")
            .batch(2)
            .input(16, 14, 14)
            .output_channels(32)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn batch_unit_produces_traffic_and_cycles() {
        let l = layer();
        let gpu = GpuSpec::titan_xp();
        let tiling = LayerTiling::new(&l);
        let map = TensorMap::new(&l);
        let sched = ColumnScheduler::new(&tiling, &gpu, 1);
        let mut hier = MemoryHierarchy::new(&gpu);
        let mut timing = TimingEngine::new(&gpu, tiling.tile());
        let mut buf = Vec::new();
        let batch = CtaBatch::new(
            &map,
            tiling.tile(),
            sched.batch(0, 0),
            tiling.main_loops(),
            1,
        );
        assert!(!batch.is_empty());
        let stats = batch.simulate(
            &mut hier,
            &mut timing,
            BatchLimits {
                max_loops: None,
                simulate_stores: true,
            },
            &mut buf,
            None,
        );
        assert!(stats.traffic.l1_bytes > 0);
        assert!(stats.traffic.l1_bytes >= stats.traffic.l2_bytes);
        assert!(stats.cycles > 0.0);
        assert!(stats.store_bytes > 0);
        assert!(!stats.loop_extrapolated);
    }

    #[test]
    fn charge_log_folds_to_the_batch_cycles_bitwise() {
        let l = layer();
        let gpu = GpuSpec::titan_xp();
        let tiling = LayerTiling::new(&l);
        let map = TensorMap::new(&l);
        let sched = ColumnScheduler::new(&tiling, &gpu, 1);
        let mut hier = MemoryHierarchy::new(&gpu);
        let mut timing = TimingEngine::new(&gpu, tiling.tile());
        let mut buf = Vec::new();
        let mut log = Vec::new();
        let batch = CtaBatch::new(
            &map,
            tiling.tile(),
            sched.batch(0, 0),
            tiling.main_loops(),
            1,
        );
        let stats = batch.simulate(
            &mut hier,
            &mut timing,
            BatchLimits {
                max_loops: Some(4),
                simulate_stores: true,
            },
            &mut buf,
            Some(&mut log),
        );
        assert!(log.len() >= 3, "loops + extrapolation + epilogue");
        let mut folded = 0.0;
        for t in &log {
            folded += t;
        }
        // Same charges folded in the same order from the same zero:
        // bitwise equality, not approximate.
        assert!(folded == timing.cycles(), "{folded} vs {}", timing.cycles());
        assert!(folded == stats.cycles);
    }

    #[test]
    fn steady_state_skips_cold_batch_and_divides_by_tail_len() {
        let mk = |l2: u64| BatchStats {
            traffic: TrafficDelta {
                l1_bytes: 2 * l2,
                l2_bytes: l2,
                dram_bytes: l2 / 2,
            },
            store_bytes: 10,
            cycles: 100.0,
            loop_extrapolated: false,
        };
        // Cold batch at 1000, steady batches at 100.
        let stats = [mk(1000), mk(100), mk(100), mk(100)];
        let s = SteadyState::of(&stats);
        assert_eq!(s.l2_bytes, 100.0, "cold batch excluded, mean over 3");
        assert_eq!(s.cycles, 100.0);
        // Single batch: it is the steady state.
        let s1 = SteadyState::of(&stats[..1]);
        assert_eq!(s1.l2_bytes, 1000.0);
        // Empty: all zeros.
        assert_eq!(SteadyState::of(&[]).l2_bytes, 0.0);
    }
}
