//! Partitioning one layer's simulation across workers.
//!
//! The column scheduler ([`crate::sched`]) already organizes a layer's
//! CTA grid into tile columns drained one [`crate::stages::CtaBatch`] at
//! a time, and all state a batch mutates is either per-batch
//! ([`crate::stages::BatchStats`]) or per-column (cache residency warms
//! up within a column and the steady state is extrapolated per column).
//! That makes the tile column the natural ownership unit for intra-layer
//! parallelism: a [`ShardPlan`] assigns each worker a disjoint,
//! contiguous range of columns, every worker replays its columns' batches
//! against its own [`crate::hierarchy::MemoryHierarchy`], and the
//! per-shard results merge through
//! [`crate::hierarchy::HierarchyStats::merge`].
//!
//! Because each column is simulated from identical initial state no
//! matter which worker owns it, and the merge walks columns in ascending
//! index order no matter how they were grouped, the merged
//! [`crate::Measurement`] is bitwise identical for every worker count —
//! `shards=4` reproduces `shards=1` exactly, only faster.

use std::ops::Range;

/// A balanced, disjoint, exhaustive assignment of a layer's tile columns
/// to `n_workers` shards.
///
/// Shard `i` owns the contiguous column range
/// `[i·C/N, (i+1)·C/N)` (integer arithmetic), so shard sizes differ by at
/// most one column and concatenating the shards in order re-yields
/// `0..C`. When `n_workers > columns` the surplus shards are empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    columns: u64,
    shards: Vec<Range<u64>>,
}

impl ShardPlan {
    /// Partitions `columns` tile columns over `n_workers` workers
    /// (`n_workers = 0` is clamped to 1).
    pub fn partition(columns: u64, n_workers: u32) -> ShardPlan {
        let n = u64::from(n_workers.max(1));
        let shards = (0..n)
            .map(|i| (i * columns / n)..((i + 1) * columns / n))
            .collect();
        ShardPlan { columns, shards }
    }

    /// Number of columns partitioned.
    pub fn columns(&self) -> u64 {
        self.columns
    }

    /// Number of shards (= workers), including empty ones.
    pub fn n_workers(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard column ranges, in ascending column order.
    pub fn shards(&self) -> &[Range<u64>] {
        &self.shards
    }

    /// The shard owning `col`.
    ///
    /// # Panics
    ///
    /// Panics when `col` is outside the partitioned range.
    pub fn shard_of(&self, col: u64) -> usize {
        assert!(col < self.columns, "column {col} beyond {}", self.columns);
        self.shards
            .iter()
            .position(|r| r.contains(&col))
            .expect("contiguous ranges cover 0..columns")
    }

    /// Largest shard size in columns (the parallel critical path).
    pub fn max_shard_len(&self) -> u64 {
        self.shards
            .iter()
            .map(|r| r.end - r.start)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(plan: &ShardPlan) -> Vec<u64> {
        plan.shards().iter().flat_map(|r| r.clone()).collect()
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        for (cols, workers) in [(1, 1), (7, 3), (16, 4), (5, 8), (100, 7), (3, 64)] {
            let plan = ShardPlan::partition(cols, workers);
            assert_eq!(plan.n_workers(), workers as usize);
            let seen = cover(&plan);
            assert_eq!(
                seen,
                (0..cols).collect::<Vec<_>>(),
                "cols={cols} workers={workers}: shards must concatenate to 0..C in order"
            );
        }
    }

    #[test]
    fn partition_is_balanced() {
        let plan = ShardPlan::partition(10, 4);
        let sizes: Vec<u64> = plan.shards().iter().map(|r| r.end - r.start).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        assert!(sizes.iter().all(|s| (2..=3).contains(s)), "{sizes:?}");
        assert_eq!(plan.max_shard_len(), 3);
    }

    #[test]
    fn more_workers_than_columns_leaves_empty_shards() {
        let plan = ShardPlan::partition(2, 6);
        assert_eq!(plan.n_workers(), 6);
        assert_eq!(cover(&plan), vec![0, 1]);
        let empties = plan.shards().iter().filter(|r| r.is_empty()).count();
        assert_eq!(empties, 4);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let plan = ShardPlan::partition(5, 0);
        assert_eq!(plan.n_workers(), 1);
        assert_eq!(plan.shards()[0], 0..5);
        assert_eq!(plan.max_shard_len(), 5);
    }

    #[test]
    fn shard_of_locates_owner() {
        let plan = ShardPlan::partition(9, 3);
        for col in 0..9 {
            let s = plan.shard_of(col);
            assert!(plan.shards()[s].contains(&col));
        }
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(8), 2);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn shard_of_rejects_out_of_range() {
        ShardPlan::partition(4, 2).shard_of(4);
    }
}
