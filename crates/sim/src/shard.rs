//! Partitioning one layer's simulation across workers.
//!
//! The column scheduler ([`crate::sched`]) already organizes a layer's
//! CTA grid into tile columns drained one [`crate::stages::CtaBatch`] at
//! a time, and all state a batch mutates is either per-batch
//! ([`crate::stages::BatchStats`]) or per-column (cache residency warms
//! up within a column and the steady state is extrapolated per column).
//! That makes the tile column the natural ownership unit for intra-layer
//! parallelism: a [`ShardPlan`] assigns each worker a disjoint,
//! contiguous range of columns, every worker replays its columns' batches
//! against its own [`crate::hierarchy::MemoryHierarchy`], and the
//! per-shard results merge through
//! [`crate::hierarchy::HierarchyStats::merge`].
//!
//! Because each column is simulated from identical initial state no
//! matter which worker owns it, and the merge walks columns in ascending
//! index order no matter how they were grouped, the merged
//! [`crate::Measurement`] is bitwise identical for every worker count —
//! `shards=4` reproduces `shards=1` exactly, only faster.
//!
//! Narrow layers (Co ≤ 128 ⇒ 1–2 tile columns) used to cap at 1–2
//! workers under the column axis. [`ShardPlan::partition_rows`] adds a
//! second, finer axis: the flattened per-column CTA-batch lists split
//! into contiguous sub-ranges, so a single tall column spreads over the
//! full worker count. Each sub-range replays cold-start privately with
//! one warm-up batch (the batch immediately preceding the range), whose
//! charges are discarded — per-batch traffic within a column is
//! stationary after one batch of warm-up, so the merge reconstructs the
//! sequential column's statistics exactly (see the probe test in
//! [`crate::sim`]). [`ShardPlan::auto`] picks the row axis only when
//! there are more workers than columns; otherwise the column axis is
//! byte-for-byte the historical plan.

use std::ops::Range;

/// Which unit [`ShardPlan`] partitions over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAxis {
    /// Whole tile columns (the historical axis): shard `i` owns a
    /// contiguous column range.
    Columns,
    /// Flattened (column, batch) units: shard `i` owns a contiguous
    /// range of the column-major batch list, splitting tall columns
    /// across workers.
    Rows,
}

/// A contiguous run of one column's CTA batches owned by a single shard
/// under [`ShardAxis::Rows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSegment {
    /// The tile column.
    pub col: u64,
    /// The batch sub-range `[start, end)` within the column's simulated
    /// prefix.
    pub batches: Range<u64>,
}

/// A balanced, disjoint, exhaustive assignment of a layer's tile columns
/// to `n_workers` shards.
///
/// Shard `i` owns the contiguous range `[i·U/N, (i+1)·U/N)` (integer
/// arithmetic) of units — whole columns under [`ShardAxis::Columns`],
/// flattened (column, batch) pairs under [`ShardAxis::Rows`] — so shard
/// sizes differ by at most one unit and concatenating the shards in
/// order re-yields `0..U`. When `n_workers > units` the surplus shards
/// are empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    columns: u64,
    /// Simulated batches per column (1 under the column axis, where the
    /// unit is the whole column).
    batches: u64,
    axis: ShardAxis,
    shards: Vec<Range<u64>>,
}

impl ShardPlan {
    /// Partitions `columns` tile columns over `n_workers` workers
    /// (`n_workers = 0` is clamped to 1).
    pub fn partition(columns: u64, n_workers: u32) -> ShardPlan {
        let n = u64::from(n_workers.max(1));
        let shards = (0..n)
            .map(|i| (i * columns / n)..((i + 1) * columns / n))
            .collect();
        ShardPlan {
            columns,
            batches: 1,
            axis: ShardAxis::Columns,
            shards,
        }
    }

    /// Partitions the column-major flattened list of `columns × batches`
    /// CTA batches over `n_workers` workers (`n_workers = 0` is clamped
    /// to 1). Unit `u` is batch `u % batches` of column `u / batches`.
    pub fn partition_rows(columns: u64, batches: u64, n_workers: u32) -> ShardPlan {
        let batches = batches.max(1);
        let units = columns * batches;
        let n = u64::from(n_workers.max(1));
        let shards = (0..n)
            .map(|i| (i * units / n)..((i + 1) * units / n))
            .collect();
        ShardPlan {
            columns,
            batches,
            axis: ShardAxis::Rows,
            shards,
        }
    }

    /// Picks the partitioning axis for a layer: the historical column
    /// axis when it already feeds every worker (`n_workers ≤ columns`),
    /// the row axis otherwise — so narrow layers scale past their column
    /// count.
    pub fn auto(columns: u64, batches: u64, n_workers: u32) -> ShardPlan {
        if u64::from(n_workers.max(1)) <= columns {
            ShardPlan::partition(columns, n_workers)
        } else {
            ShardPlan::partition_rows(columns, batches, n_workers)
        }
    }

    /// Number of columns partitioned.
    pub fn columns(&self) -> u64 {
        self.columns
    }

    /// The partitioning axis.
    pub fn axis(&self) -> ShardAxis {
        self.axis
    }

    /// Simulated batches per column the plan was built for (1 under the
    /// column axis).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Shard `i`'s work as per-column batch segments, in ascending
    /// (column, batch) order. Under [`ShardAxis::Columns`] each owned
    /// column appears as one whole segment `0..batches`.
    pub fn shard_segments(&self, shard: usize) -> Vec<ColumnSegment> {
        let r = &self.shards[shard];
        match self.axis {
            ShardAxis::Columns => r
                .clone()
                .map(|col| ColumnSegment {
                    col,
                    batches: 0..self.batches,
                })
                .collect(),
            ShardAxis::Rows => {
                let mut out = Vec::new();
                let mut u = r.start;
                while u < r.end {
                    let col = u / self.batches;
                    let b0 = u % self.batches;
                    let b1 = (self.batches).min(b0 + (r.end - u));
                    out.push(ColumnSegment {
                        col,
                        batches: b0..b1,
                    });
                    u += b1 - b0;
                }
                out
            }
        }
    }

    /// Number of shards (= workers), including empty ones.
    pub fn n_workers(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard unit ranges (columns or flattened batches,
    /// depending on the axis), in ascending order.
    pub fn shards(&self) -> &[Range<u64>] {
        &self.shards
    }

    /// The shard owning `col` (column-axis plans only — under the row
    /// axis a column may span several shards).
    ///
    /// # Panics
    ///
    /// Panics when `col` is outside the partitioned range.
    pub fn shard_of(&self, col: u64) -> usize {
        assert!(col < self.columns, "column {col} beyond {}", self.columns);
        self.shards
            .iter()
            .position(|r| r.contains(&col))
            .expect("contiguous ranges cover 0..columns")
    }

    /// Largest shard size in units (the parallel critical path).
    pub fn max_shard_len(&self) -> u64 {
        self.shards
            .iter()
            .map(|r| r.end - r.start)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(plan: &ShardPlan) -> Vec<u64> {
        plan.shards().iter().flat_map(|r| r.clone()).collect()
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        for (cols, workers) in [(1, 1), (7, 3), (16, 4), (5, 8), (100, 7), (3, 64)] {
            let plan = ShardPlan::partition(cols, workers);
            assert_eq!(plan.n_workers(), workers as usize);
            let seen = cover(&plan);
            assert_eq!(
                seen,
                (0..cols).collect::<Vec<_>>(),
                "cols={cols} workers={workers}: shards must concatenate to 0..C in order"
            );
        }
    }

    #[test]
    fn partition_is_balanced() {
        let plan = ShardPlan::partition(10, 4);
        let sizes: Vec<u64> = plan.shards().iter().map(|r| r.end - r.start).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        assert!(sizes.iter().all(|s| (2..=3).contains(s)), "{sizes:?}");
        assert_eq!(plan.max_shard_len(), 3);
    }

    #[test]
    fn more_workers_than_columns_leaves_empty_shards() {
        let plan = ShardPlan::partition(2, 6);
        assert_eq!(plan.n_workers(), 6);
        assert_eq!(cover(&plan), vec![0, 1]);
        let empties = plan.shards().iter().filter(|r| r.is_empty()).count();
        assert_eq!(empties, 4);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let plan = ShardPlan::partition(5, 0);
        assert_eq!(plan.n_workers(), 1);
        assert_eq!(plan.shards()[0], 0..5);
        assert_eq!(plan.max_shard_len(), 5);
    }

    #[test]
    fn shard_of_locates_owner() {
        let plan = ShardPlan::partition(9, 3);
        for col in 0..9 {
            let s = plan.shard_of(col);
            assert!(plan.shards()[s].contains(&col));
        }
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(8), 2);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn shard_of_rejects_out_of_range() {
        ShardPlan::partition(4, 2).shard_of(4);
    }

    #[test]
    fn row_partition_covers_every_batch_exactly_once() {
        for (cols, batches, workers) in [(1, 7, 4), (2, 5, 8), (3, 4, 5), (1, 1, 16), (4, 6, 3)] {
            let plan = ShardPlan::partition_rows(cols, batches, workers);
            assert_eq!(plan.axis(), ShardAxis::Rows);
            assert_eq!(plan.batches(), batches);
            let mut seen: Vec<(u64, u64)> = Vec::new();
            for s in 0..plan.n_workers() {
                for seg in plan.shard_segments(s) {
                    for b in seg.batches.clone() {
                        seen.push((seg.col, b));
                    }
                }
            }
            let want: Vec<(u64, u64)> = (0..cols)
                .flat_map(|c| (0..batches).map(move |b| (c, b)))
                .collect();
            assert_eq!(
                seen, want,
                "cols={cols} batches={batches} workers={workers}"
            );
        }
    }

    #[test]
    fn row_segments_are_contiguous_within_a_shard() {
        let plan = ShardPlan::partition_rows(3, 5, 4);
        for s in 0..plan.n_workers() {
            let segs = plan.shard_segments(s);
            for w in segs.windows(2) {
                // Consecutive segments either continue the same column or
                // start the next one at batch 0.
                assert!(
                    w[1].col == w[0].col + 1 && w[1].batches.start == 0
                        || w[1].col == w[0].col && w[1].batches.start == w[0].batches.end,
                    "{w:?}"
                );
            }
        }
    }

    #[test]
    fn auto_prefers_columns_until_workers_exceed_them() {
        let wide = ShardPlan::auto(4, 6, 4);
        assert_eq!(wide.axis(), ShardAxis::Columns);
        assert_eq!(wide, ShardPlan::partition(4, 4));
        let narrow = ShardPlan::auto(2, 6, 8);
        assert_eq!(narrow.axis(), ShardAxis::Rows);
        assert_eq!(narrow, ShardPlan::partition_rows(2, 6, 8));
        // n = columns stays on the column axis.
        assert_eq!(ShardPlan::auto(3, 9, 3).axis(), ShardAxis::Columns);
    }

    #[test]
    fn column_axis_segments_are_whole_columns() {
        let plan = ShardPlan::partition(4, 2);
        let segs = plan.shard_segments(1);
        assert_eq!(segs.len(), 2);
        assert_eq!(
            segs[0],
            ColumnSegment {
                col: 2,
                batches: 0..1
            }
        );
        assert_eq!(plan.batches(), 1);
    }
}
