//! Byte-address layout of the convolution tensors.
//!
//! The paper uses the performance-efficient **BCHW** ordering (§IV):
//! within the IFmap tensor, `w` is innermost, then `h`, then channel, then
//! batch sample. Filters use the matching KCRS order, which makes each
//! im2col filter-matrix column (one output channel's flattened filter)
//! contiguous. Tensors are placed back-to-back in a flat address space;
//! zero padding is *logical* (padded positions have no address — the
//! kernel predicates those loads off, paper Fig. 5a).

use delta_model::{ConvLayer, BYTES_PER_ELEMENT};

/// Address map for one layer's IFmap / filter / OFmap tensors.
#[derive(Debug, Clone)]
pub struct TensorMap {
    batch: u32,
    ci: u32,
    hi: u32,
    wi: u32,
    co: u32,
    hf: u32,
    wf: u32,
    stride: u32,
    pad: i64,
    ho: u32,
    wo: u32,
    gemm_k: u64,
    ifmap_base: u64,
    filter_base: u64,
    ofmap_base: u64,
    end: u64,
}

impl TensorMap {
    /// Builds the address map for `layer`, placing IFmap, filter, and
    /// OFmap consecutively from address 0.
    pub fn new(layer: &ConvLayer) -> TensorMap {
        let ifmap_base = 0u64;
        let filter_base = ifmap_base + layer.ifmap_bytes();
        let ofmap_base = filter_base + layer.filter_bytes();
        let end = ofmap_base + layer.ofmap_bytes();
        TensorMap {
            batch: layer.batch(),
            ci: layer.in_channels(),
            hi: layer.in_height(),
            wi: layer.in_width(),
            co: layer.out_channels(),
            hf: layer.filter_height(),
            wf: layer.filter_width(),
            stride: layer.stride(),
            pad: i64::from(layer.pad()),
            ho: layer.out_height(),
            wo: layer.out_width(),
            gemm_k: layer.gemm_k(),
            ifmap_base,
            filter_base,
            ofmap_base,
            end,
        }
    }

    /// One past the last mapped byte.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Base address of the filter tensor.
    pub fn filter_base(&self) -> u64 {
        self.filter_base
    }

    /// Base address of the OFmap tensor.
    pub fn ofmap_base(&self) -> u64 {
        self.ofmap_base
    }

    /// The GEMM reduction depth `K = Ci × Hf × Wf`.
    pub fn gemm_k(&self) -> u64 {
        self.gemm_k
    }

    /// Decodes GEMM row `m` into `(sample, out_y, out_x)`.
    #[inline]
    pub fn decode_row(&self, m: u64) -> (u32, u32, u32) {
        let per_sample = u64::from(self.ho) * u64::from(self.wo);
        let b = (m / per_sample) as u32;
        let r = m % per_sample;
        let oy = (r / u64::from(self.wo)) as u32;
        let ox = (r % u64::from(self.wo)) as u32;
        (b, oy, ox)
    }

    /// Decodes GEMM reduction index `k` into `(channel, filter_y,
    /// filter_x)`.
    #[inline]
    pub fn decode_k(&self, k: u64) -> (u32, u32, u32) {
        let per_channel = u64::from(self.hf) * u64::from(self.wf);
        let c = (k / per_channel) as u32;
        let r = k % per_channel;
        let fy = (r / u64::from(self.wf)) as u32;
        let fx = (r % u64::from(self.wf)) as u32;
        (c, fy, fx)
    }

    /// Address of the IFmap element GEMM cell `(m, k)` reads, or `None`
    /// when the access falls in the zero-padded border (predicated off).
    #[inline]
    pub fn im2col_addr(&self, m: u64, k: u64) -> Option<u64> {
        let (b, oy, ox) = self.decode_row(m);
        let (c, fy, fx) = self.decode_k(k);
        let iy = i64::from(oy) * i64::from(self.stride) + i64::from(fy) - self.pad;
        let ix = i64::from(ox) * i64::from(self.stride) + i64::from(fx) - self.pad;
        self.ifmap_addr_checked(b, c, iy, ix)
    }

    /// Address of IFmap element `(b, c, iy, ix)` with bounds/padding
    /// checks.
    #[inline]
    pub fn ifmap_addr_checked(&self, b: u32, c: u32, iy: i64, ix: i64) -> Option<u64> {
        if iy < 0 || ix < 0 || iy >= i64::from(self.hi) || ix >= i64::from(self.wi) {
            return None;
        }
        let idx = ((u64::from(b) * u64::from(self.ci) + u64::from(c)) * u64::from(self.hi)
            + iy as u64)
            * u64::from(self.wi)
            + ix as u64;
        Some(self.ifmap_base + idx * BYTES_PER_ELEMENT)
    }

    /// Address of filter-matrix cell `(k, n)`: output channel `n`'s weight
    /// at flattened reduction index `k` (KCRS layout keeps each column
    /// contiguous). `None` when `n` exceeds the output-channel count
    /// (edge CTA tiles).
    #[inline]
    pub fn filter_addr(&self, k: u64, n: u64) -> Option<u64> {
        if n >= u64::from(self.co) || k >= self.gemm_k {
            return None;
        }
        Some(self.filter_base + (n * self.gemm_k + k) * BYTES_PER_ELEMENT)
    }

    /// Address of OFmap cell `(m, n)` (the epilogue's store target), or
    /// `None` outside the matrix.
    #[inline]
    pub fn ofmap_addr(&self, m: u64, n: u64) -> Option<u64> {
        if n >= u64::from(self.co)
            || m >= u64::from(self.batch) * u64::from(self.ho) * u64::from(self.wo)
        {
            return None;
        }
        Some(self.ofmap_base + (m * u64::from(self.co) + n) * BYTES_PER_ELEMENT)
    }

    /// Number of GEMM rows `M`.
    pub fn gemm_m(&self) -> u64 {
        u64::from(self.batch) * u64::from(self.ho) * u64::from(self.wo)
    }

    /// Number of GEMM columns `N`.
    pub fn gemm_n(&self) -> u64 {
        u64::from(self.co)
    }

    /// Scalar dimensions for the trace generator's hot loop.
    pub(crate) fn layer_dims(&self) -> crate::trace::LayerDims {
        crate::trace::LayerDims {
            hi: u64::from(self.hi),
            wi: u64::from(self.wi),
            ci_hw: u64::from(self.ci) * u64::from(self.hi) * u64::from(self.wi),
            hf: self.hf,
            wf: self.wf,
            stride: i64::from(self.stride),
            pad: self.pad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_model::ConvLayer;

    fn fig5_layer() -> ConvLayer {
        // The paper's running example: 4x4 IFmap, pad 1, 3x3 filter,
        // stride 1 (Fig. 5a numbers the 6x6 padded grid 0..35; the
        // *physical* tensor is the 4x4 interior).
        ConvLayer::builder("fig5")
            .batch(1)
            .input(1, 4, 4)
            .output_channels(4)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn tensors_are_consecutive() {
        let l = fig5_layer();
        let t = TensorMap::new(&l);
        assert_eq!(t.filter_base(), l.ifmap_bytes());
        assert_eq!(t.ofmap_base(), l.ifmap_bytes() + l.filter_bytes());
        assert_eq!(t.end(), l.footprint_bytes());
    }

    #[test]
    fn padding_positions_have_no_address() {
        let t = TensorMap::new(&fig5_layer());
        // Output (0,0) with filter element (0,0) reads padded (-1,-1).
        assert_eq!(t.im2col_addr(0, 0), None);
        // Output (0,0) with filter element (1,1) reads IFmap (0,0).
        assert_eq!(t.im2col_addr(0, 4), Some(0));
        // Output (0,0) with filter element (2,2) reads IFmap (1,1) = elem 5.
        assert_eq!(t.im2col_addr(0, 8), Some(5 * 4));
    }

    #[test]
    fn im2col_column_walks_rows() {
        // For the center filter element (k=4) the im2col column visits the
        // IFmap row-major: m=0..16 -> elements 0..16.
        let t = TensorMap::new(&fig5_layer());
        for m in 0..16u64 {
            assert_eq!(t.im2col_addr(m, 4), Some(m * 4));
        }
    }

    #[test]
    fn stride_skips_input_rows() {
        let l = ConvLayer::builder("s2")
            .batch(1)
            .input(1, 8, 8)
            .output_channels(1)
            .filter(1, 1)
            .stride(2)
            .build()
            .unwrap();
        let t = TensorMap::new(&l);
        // Outputs sample every other input column/row.
        assert_eq!(t.im2col_addr(0, 0), Some(0));
        assert_eq!(t.im2col_addr(1, 0), Some(2 * 4));
        assert_eq!(t.im2col_addr(4, 0), Some(16 * 4)); // next output row -> input row 2
    }

    #[test]
    fn filter_columns_contiguous_in_k() {
        let l = fig5_layer();
        let t = TensorMap::new(&l);
        let base = t.filter_base();
        assert_eq!(t.filter_addr(0, 0), Some(base));
        assert_eq!(t.filter_addr(1, 0), Some(base + 4));
        // Next output channel jumps a whole K stride.
        assert_eq!(t.filter_addr(0, 1), Some(base + 9 * 4));
        assert_eq!(t.filter_addr(0, 4), None, "beyond Co");
        assert_eq!(t.filter_addr(9, 0), None, "beyond K");
    }

    #[test]
    fn batch_samples_are_channel_major() {
        let l = ConvLayer::builder("b")
            .batch(2)
            .input(3, 4, 4)
            .output_channels(4)
            .filter(1, 1)
            .build()
            .unwrap();
        let t = TensorMap::new(&l);
        let per_sample = 3 * 4 * 4 * 4u64; // bytes
                                           // m=16 is sample 1's first output.
        assert_eq!(t.im2col_addr(16, 0), Some(per_sample));
        // k=1 is channel 1.
        assert_eq!(t.im2col_addr(0, 1), Some(4 * 4 * 4));
    }

    #[test]
    fn ofmap_addresses_row_major_over_n() {
        let l = fig5_layer();
        let t = TensorMap::new(&l);
        let base = t.ofmap_base();
        assert_eq!(t.ofmap_addr(0, 0), Some(base));
        assert_eq!(t.ofmap_addr(0, 1), Some(base + 4));
        assert_eq!(t.ofmap_addr(1, 0), Some(base + 4 * 4));
        assert_eq!(t.ofmap_addr(16, 0), None);
    }

    #[test]
    fn decode_round_trips() {
        let l = ConvLayer::builder("d")
            .batch(3)
            .input(5, 9, 7)
            .output_channels(2)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let t = TensorMap::new(&l);
        let (ho, wo) = (l.out_height() as u64, l.out_width() as u64);
        for m in [0, 1, wo, ho * wo, 3 * ho * wo - 1] {
            let (b, oy, ox) = t.decode_row(m);
            assert_eq!(
                u64::from(b) * ho * wo + u64::from(oy) * wo + u64::from(ox),
                m
            );
        }
        for k in [0, 1, 8, 9, 44] {
            let (c, fy, fx) = t.decode_k(k);
            assert_eq!(u64::from(c) * 9 + u64::from(fy) * 3 + u64::from(fx), k);
        }
    }
}
