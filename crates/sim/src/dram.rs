//! DRAM channel latency/bandwidth model (paper §V "pipeline latency" and
//! Appendix B, Fig. 18).
//!
//! The paper measures each GPU's DRAM turnaround latency with a
//! microbenchmark that ramps offered traffic: latency is flat (the
//! *pipeline latency*) while the channel is underutilized, then grows
//! steeply as transactions queue when the offered load approaches the
//! effective channel bandwidth. [`DramChannelModel`] reproduces that
//! hockey-stick with an M/D/1-style queueing term, and
//! [`latency_bandwidth_curve`] regenerates the Fig. 18 sweeps.

use delta_model::GpuSpec;
use serde::{Deserialize, Serialize};

/// Closed-form DRAM channel model: fixed pipeline latency plus queueing
/// delay that diverges at the effective bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramChannelModel {
    /// Unloaded turnaround latency in core clocks.
    pub pipeline_latency_clks: f64,
    /// Effective channel bandwidth in GB/s (post bank-conflict, i.e. the
    /// saturation asymptote of Fig. 18).
    pub effective_bw_gbps: f64,
    /// Core clock in GHz (to convert loads into per-clock terms).
    pub core_clock_ghz: f64,
}

impl DramChannelModel {
    /// Extracts the DRAM model of `gpu`.
    pub fn from_gpu(gpu: &GpuSpec) -> DramChannelModel {
        DramChannelModel {
            pipeline_latency_clks: gpu.lat_dram_clks(),
            effective_bw_gbps: gpu.dram_bw_gbps(),
            core_clock_ghz: gpu.core_clock_ghz(),
        }
    }

    /// Turnaround latency (clocks) at `offered_gbps` of demand.
    ///
    /// Uses an M/D/1 waiting-time term: `L = L0 · (1 + ρ/(2(1−ρ)))` with
    /// utilization `ρ = offered/effective`, clamped at 50× the pipeline
    /// latency once the channel saturates (queues grow without bound in
    /// steady state; real measurements are bounded by the finite in-flight
    /// window, which the clamp stands in for).
    pub fn latency_clks(&self, offered_gbps: f64) -> f64 {
        let rho = (offered_gbps / self.effective_bw_gbps).max(0.0);
        if rho >= 1.0 {
            return self.pipeline_latency_clks * 50.0;
        }
        let queue = rho / (2.0 * (1.0 - rho));
        (self.pipeline_latency_clks * (1.0 + queue)).min(self.pipeline_latency_clks * 50.0)
    }

    /// Achieved bandwidth at `offered_gbps` (cannot exceed the effective
    /// channel bandwidth).
    pub fn achieved_gbps(&self, offered_gbps: f64) -> f64 {
        offered_gbps.min(self.effective_bw_gbps)
    }

    /// Time in clocks to transfer `bytes` at full effective bandwidth,
    /// excluding the pipeline latency.
    pub fn transfer_clks(&self, bytes: f64) -> f64 {
        bytes / (self.effective_bw_gbps / self.core_clock_ghz)
    }
}

/// One sample of the Fig. 18 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBandwidthPoint {
    /// Achieved bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Measured turnaround latency in clocks.
    pub latency_clks: f64,
}

/// Sweeps offered load from near-idle to past saturation, reproducing the
/// Fig. 18 latency-vs-bandwidth curve with `points` samples.
pub fn latency_bandwidth_curve(
    model: &DramChannelModel,
    points: usize,
) -> Vec<LatencyBandwidthPoint> {
    let max_offered = model.effective_bw_gbps * 1.1;
    (0..points)
        .map(|i| {
            let offered = max_offered * (i as f64 + 0.5) / points as f64;
            LatencyBandwidthPoint {
                bandwidth_gbps: model.achieved_gbps(offered),
                latency_clks: model.latency_clks(offered),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_pipeline_latency() {
        let m = DramChannelModel::from_gpu(&GpuSpec::titan_xp());
        assert!((m.latency_clks(0.0) - 500.0).abs() < 1e-9);
        // Light load: within a few percent of the floor.
        assert!(m.latency_clks(20.0) < 520.0);
    }

    #[test]
    fn latency_explodes_near_saturation() {
        // Fig. 18: latency grows exponentially as traffic approaches the
        // effective bandwidth.
        let m = DramChannelModel::from_gpu(&GpuSpec::titan_xp());
        let low = m.latency_clks(100.0);
        let high = m.latency_clks(440.0);
        let sat = m.latency_clks(460.0);
        assert!(high > 5.0 * low, "{high} vs {low}");
        assert!((sat - 500.0 * 50.0).abs() < 1e-9, "clamped at saturation");
    }

    #[test]
    fn latency_is_monotone_in_load() {
        let m = DramChannelModel::from_gpu(&GpuSpec::p100());
        let mut prev = 0.0;
        for i in 0..120 {
            let l = m.latency_clks(i as f64 * 5.0);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn achieved_bw_saturates_at_effective() {
        let m = DramChannelModel::from_gpu(&GpuSpec::v100());
        assert!((m.achieved_gbps(2000.0) - 850.0).abs() < 1e-9);
        assert!((m.achieved_gbps(100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn curve_shape_matches_fig18() {
        for gpu in GpuSpec::paper_devices() {
            let m = DramChannelModel::from_gpu(&gpu);
            let curve = latency_bandwidth_curve(&m, 64);
            assert_eq!(curve.len(), 64);
            // Flat-ish head, steep tail.
            let head = curve[4].latency_clks / curve[0].latency_clks;
            let tail = curve.last().unwrap().latency_clks / curve[0].latency_clks;
            assert!(head < 1.3, "{}: head ratio {head}", gpu.name());
            assert!(tail > 10.0, "{}: tail ratio {tail}", gpu.name());
            // Bandwidth never exceeds the device's effective bandwidth.
            assert!(curve
                .iter()
                .all(|p| p.bandwidth_gbps <= gpu.dram_bw_gbps() + 1e-9));
        }
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let m = DramChannelModel::from_gpu(&GpuSpec::titan_xp());
        // 450 GB/s at 1.58 GHz = 284.8 B/clk; 284.8 bytes take 1 clk.
        let bpc = 450.0 / 1.58;
        assert!((m.transfer_clks(bpc) - 1.0).abs() < 1e-9);
    }
}
