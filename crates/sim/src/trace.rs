//! Implicit-GEMM address-trace generation (paper Figs. 3 & 5).
//!
//! Each CTA's main-loop iteration loads:
//!
//! * its `blkM × blkK` IFmap-matrix tile — one warp covers 32 consecutive
//!   rows of a single im2col column (Fig. 5a), so consecutive threads read
//!   consecutive *output positions* for one filter element;
//! * its `blkN × blkK` filter-matrix tile — one warp covers `blkK` rows ×
//!   `32/blkK` columns (Fig. 5b/c), so threads within a `blkK` group read
//!   contiguous weights of one output channel while groups jump between
//!   distant channels.
//!
//! Row coordinates are precomputed per CTA so the per-element cost in the
//! hot loop is a handful of integer operations.

use crate::tensor::TensorMap;
use delta_model::tiling::CtaTile;
use delta_model::{BYTES_PER_ELEMENT, WARP_SIZE};

/// Precomputed coordinates of one GEMM row within a CTA tile.
#[derive(Debug, Clone, Copy)]
struct RowCoord {
    /// Element index of the sample's first IFmap element
    /// (`b × Ci × Hi × Wi`).
    sample_base: u64,
    /// Top-left input y of the filter window (`oy × stride − pad`).
    y0: i64,
    /// Top-left input x of the filter window (`ox × stride − pad`).
    x0: i64,
    /// False for rows past the GEMM edge (partial tiles).
    valid: bool,
}

/// Address-trace generator for one CTA.
#[derive(Debug)]
pub struct CtaTrace {
    tile: CtaTile,
    /// First GEMM row/column of this CTA's tile.
    col0: u64,
    rows: Vec<RowCoord>,
    hi: u64,
    wi: u64,
    hf: u32,
    wf: u32,
    gemm_k: u64,
    gemm_n: u64,
    filter_base: u64,
    warp_buf: Vec<Option<u64>>,
}

impl CtaTrace {
    /// Prepares the trace generator for the CTA at tile coordinates
    /// (`cta_row`, `cta_col`) of the grid.
    pub fn new(map: &TensorMap, tile: CtaTile, cta_row: u64, cta_col: u64) -> CtaTrace {
        let row0 = cta_row * u64::from(tile.blk_m());
        let m = map.gemm_m();
        let layer_dims = map.layer_dims();
        let rows = (0..u64::from(tile.blk_m()))
            .map(|r| {
                let gm = row0 + r;
                if gm >= m {
                    return RowCoord {
                        sample_base: 0,
                        y0: 0,
                        x0: 0,
                        valid: false,
                    };
                }
                let (b, oy, ox) = map.decode_row(gm);
                RowCoord {
                    sample_base: u64::from(b) * layer_dims.ci_hw,
                    y0: i64::from(oy) * layer_dims.stride - layer_dims.pad,
                    x0: i64::from(ox) * layer_dims.stride - layer_dims.pad,
                    valid: true,
                }
            })
            .collect();
        CtaTrace {
            tile,
            col0: cta_col * u64::from(tile.blk_n()),
            rows,
            hi: layer_dims.hi,
            wi: layer_dims.wi,
            hf: layer_dims.hf,
            wf: layer_dims.wf,
            gemm_k: map.gemm_k(),
            gemm_n: map.gemm_n(),
            filter_base: map.filter_base(),
            warp_buf: vec![None; WARP_SIZE as usize],
        }
    }

    /// Calls `visit` once per global-load warp of main-loop `loop_idx`,
    /// passing the warp's 32 (optional) byte addresses. IFmap warps come
    /// first, then filter warps, matching the kernel's load order.
    pub fn for_each_warp(&mut self, loop_idx: u64, mut visit: impl FnMut(&[Option<u64>])) {
        let blk_k = u64::from(self.tile.blk_k());
        let k0 = loop_idx * blk_k;
        let k_end = (k0 + blk_k).min(self.gemm_k);

        // --- IFmap tile: one warp = 32 consecutive rows of one column ---
        for k in k0..k_end {
            let c = k / (u64::from(self.hf) * u64::from(self.wf));
            let rem = k % (u64::from(self.hf) * u64::from(self.wf));
            let fy = (rem / u64::from(self.wf)) as i64;
            let fx = (rem % u64::from(self.wf)) as i64;
            let chan_base = c * self.hi * self.wi;
            for chunk in self.rows.chunks(WARP_SIZE as usize) {
                for (lane, rc) in chunk.iter().enumerate() {
                    self.warp_buf[lane] = if rc.valid {
                        let iy = rc.y0 + fy;
                        let ix = rc.x0 + fx;
                        if iy >= 0 && ix >= 0 && (iy as u64) < self.hi && (ix as u64) < self.wi {
                            Some(
                                (rc.sample_base + chan_base + iy as u64 * self.wi + ix as u64)
                                    * BYTES_PER_ELEMENT,
                            )
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                }
                for lane in chunk.len()..WARP_SIZE as usize {
                    self.warp_buf[lane] = None;
                }
                visit(&self.warp_buf);
            }
        }

        // --- Filter tile: one warp = blkK rows x (32/blkK) columns -------
        let k_span = blk_k;
        let cols_per_warp = WARP_SIZE / k_span.max(1);
        let filter_warps = (u64::from(self.tile.blk_n()) * k_span).div_ceil(WARP_SIZE);
        for w in 0..filter_warps {
            for t in 0..WARP_SIZE {
                let col_in_warp = t / k_span;
                let k_off = t % k_span;
                let n = self.col0 + w * cols_per_warp + col_in_warp;
                let k = k0 + k_off;
                self.warp_buf[t as usize] = if n < self.gemm_n && k < self.gemm_k {
                    Some(self.filter_base + (n * self.gemm_k + k) * BYTES_PER_ELEMENT)
                } else {
                    None
                };
            }
            visit(&self.warp_buf);
        }
    }

    /// The tile this trace covers.
    pub fn tile(&self) -> CtaTile {
        self.tile
    }
}

/// Cached scalar dimensions extracted from the [`TensorMap`]'s layer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LayerDims {
    pub(crate) hi: u64,
    pub(crate) wi: u64,
    /// Per-sample element count `Ci × Hi × Wi`.
    pub(crate) ci_hw: u64,
    pub(crate) hf: u32,
    pub(crate) wf: u32,
    pub(crate) stride: i64,
    pub(crate) pad: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_model::ConvLayer;

    fn trace_for(layer: &ConvLayer, cta_row: u64, cta_col: u64) -> (TensorMap, CtaTrace) {
        let map = TensorMap::new(layer);
        let tile = CtaTile::select(layer.out_channels());
        let t = CtaTrace::new(&map, tile, cta_row, cta_col);
        (map, t)
    }

    fn collect_addrs(trace: &mut CtaTrace, loop_idx: u64) -> Vec<Option<u64>> {
        let mut all = Vec::new();
        trace.for_each_warp(loop_idx, |w| all.extend_from_slice(w));
        all
    }

    #[test]
    fn warp_count_matches_tile_volume() {
        let l = ConvLayer::builder("t")
            .batch(2)
            .input(16, 14, 14)
            .output_channels(128)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let (_, mut tr) = trace_for(&l, 0, 0);
        let mut warps = 0;
        tr.for_each_warp(0, |_| warps += 1);
        // IFmap: blkK columns x blkM/32 warps; filter: blkN*blkK/32 warps.
        assert_eq!(warps, 8 * (128 / 32) + (128 * 8) / 32);
    }

    #[test]
    fn trace_agrees_with_tensor_map_oracle() {
        // Every generated IFmap address must equal the (slow) per-cell
        // oracle TensorMap::im2col_addr.
        let l = ConvLayer::builder("t")
            .batch(2)
            .input(3, 6, 6)
            .output_channels(40)
            .filter(3, 3)
            .stride(2)
            .pad(1)
            .build()
            .unwrap();
        let map = TensorMap::new(&l);
        let tile = CtaTile::select(l.out_channels());
        let mut tr = CtaTrace::new(&map, tile, 0, 0);
        let blk_m = u64::from(tile.blk_m());
        let blk_k = u64::from(tile.blk_k());
        let warps_per_col = blk_m / 32;

        let mut warp_idx = 0u64;
        tr.for_each_warp(0, |w| {
            let is_ifmap = warp_idx < blk_k.min(map.gemm_k()) * warps_per_col;
            if is_ifmap {
                let k = warp_idx / warps_per_col;
                let row_base = (warp_idx % warps_per_col) * 32;
                for (lane, addr) in w.iter().enumerate() {
                    let m = row_base + lane as u64;
                    let expect = if m < map.gemm_m() {
                        map.im2col_addr(m, k)
                    } else {
                        None
                    };
                    assert_eq!(*addr, expect, "m={m} k={k}");
                }
            }
            warp_idx += 1;
        });
    }

    #[test]
    fn filter_warps_match_fig5b_layout() {
        let l = ConvLayer::builder("t")
            .batch(1)
            .input(16, 14, 14)
            .output_channels(128)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let map = TensorMap::new(&l);
        let tile = CtaTile::select(128);
        assert_eq!(tile.blk_k(), 8);
        let mut tr = CtaTrace::new(&map, tile, 0, 0);
        let ifmap_warps = 8 * (128 / 32);
        let mut idx = 0;
        tr.for_each_warp(0, |w| {
            if idx == ifmap_warps {
                // First filter warp: threads 0..8 walk k of column 0
                // contiguously; thread 8 jumps to column 1.
                let k_bytes = map.gemm_k() * 4;
                let a0 = w[0].unwrap();
                assert_eq!(w[1].unwrap(), a0 + 4);
                assert_eq!(w[7].unwrap(), a0 + 28);
                assert_eq!(w[8].unwrap(), a0 + k_bytes);
                assert_eq!(w[31].unwrap(), a0 + 3 * k_bytes + 28);
            }
            idx += 1;
        });
    }

    #[test]
    fn partial_edge_tiles_predicate_out_of_range() {
        // M = 36 -> rows 36..128 of the tile are invalid; N = 40 < blkN.
        let l = ConvLayer::builder("t")
            .batch(1)
            .input(4, 6, 6)
            .output_channels(40)
            .filter(1, 1)
            .build()
            .unwrap();
        let (map, mut tr) = trace_for(&l, 0, 0);
        assert_eq!(map.gemm_m(), 36);
        let addrs = collect_addrs(&mut tr, 0);
        let live = addrs.iter().flatten().count();
        assert!(live > 0);
        // IFmap live lanes: 36 rows x blkK(4) columns; filter live:
        // 40 cols x 4 rows.
        assert_eq!(live, 36 * 4 + 40 * 4);
    }

    #[test]
    fn padded_border_lanes_are_none() {
        let l = ConvLayer::builder("t")
            .batch(1)
            .input(1, 4, 4)
            .output_channels(32)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let (_, mut tr) = trace_for(&l, 0, 0);
        // k=0 (filter top-left): output (0,0) reads padding.
        let addrs = collect_addrs(&mut tr, 0);
        assert_eq!(addrs[0], None);
        // Some lane of the k=0 column is live (interior outputs).
        assert!(addrs[..16].iter().any(Option::is_some));
    }

    #[test]
    fn second_loop_advances_k() {
        let l = ConvLayer::builder("t")
            .batch(1)
            .input(16, 8, 8)
            .output_channels(64)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let (map, mut tr) = trace_for(&l, 0, 0);
        let a0 = collect_addrs(&mut tr, 0);
        let a1 = collect_addrs(&mut tr, 1);
        assert_ne!(a0, a1);
        // Loop 1's first ifmap column is k = blkK.
        let blk_k = u64::from(tr.tile().blk_k());
        assert_eq!(a1[5], map.im2col_addr(5, blk_k));
    }
}
