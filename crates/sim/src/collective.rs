//! The collective scheduler: gradient bucketing and compute/communication
//! overlap for data-parallel training steps.
//!
//! PR 3 charged the gradient all-reduce *serially* — every layer's
//! exchange added to its wgrad estimate, as if the fabric only ran after
//! the math. Real frameworks (DDP-style) instead pack gradients into
//! fixed-size **buckets** in the order backward produces them (last
//! layer first) and launch each bucket's all-reduce as soon as its last
//! gradient materializes, so most of the exchange hides behind the
//! remaining backward compute. This module implements exactly that:
//!
//! * [`bucketize`] — a pure, ordered, disjoint, exhaustive partition of
//!   the per-layer gradient byte counts into `bucket_bytes`-sized
//!   buckets (a single oversized gradient keeps its own bucket; a bucket
//!   larger than the whole model yields one bucket);
//! * [`schedule_step`] — the event-driven schedule: a serial compute
//!   stream (forward in layer order, then dgrad/wgrad in reverse) and a
//!   serial communication channel that processes buckets in ready order,
//!   each bucket starting at `max(ready, previous bucket end)` (or after
//!   all compute, when overlap is off);
//! * the simulator's step evaluation
//!   ([`Backend::evaluate_step`](delta_model::backend::Backend::evaluate_step)
//!   for `Simulator`) — the trace-driven instantiation: per-pass compute
//!   times from the multi-GPU replay's per-device critical path,
//!   all-reduce durations from the query's interconnect/topology, bucket
//!   size and overlap from the [`StepQuery`]. The per-layer table and
//!   the timeline come from **one** replay per unique shape.
//!
//! The resulting [`StepTimeline`] satisfies
//! `max(compute, comm) <= step <= serial` *exactly in floating point*
//! (the serial total is accumulated in the same order as the overlap-off
//! communication chain), which is what lets the CI perf gate assert the
//! bound bitwise.

use crate::multigpu::MultiGpuMeasurement;
use crate::sim::Simulator;
use crate::topology::Topology;
use delta_model::backend::serial_step_spans;
use delta_model::engine::{LayerShape, TrainingRow, TrainingStepEvaluation};
use delta_model::query::{Parallelism, StepEvaluation, StepQuery};
use delta_model::schedule::{bucket_label, DeviceTimeline, Span, SpanKind, StepTimeline};
use delta_model::{training, ConvLayer, Error};
use rayon::prelude::*;
use std::collections::HashMap;

// The bucketizer moved into the core crate (cache v3's step-cache
// relabeling needs it to rebuild all-reduce span labels on a hit);
// re-exported here so existing `collective::bucketize` callers keep
// compiling unchanged.
pub use delta_model::schedule::{bucketize, GradBucket};

/// One layer's pass durations and gradient payload — the compute-side
/// input to [`schedule_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPasses {
    /// The layer's label (used for span labels).
    pub label: String,
    /// Forward-pass seconds.
    pub forward_seconds: f64,
    /// Data-gradient seconds; `None` for the network's first layer.
    pub dgrad_seconds: Option<f64>,
    /// Weight-gradient seconds.
    pub wgrad_seconds: f64,
    /// Weight-gradient payload to all-reduce, in bytes.
    pub grad_bytes: u64,
}

/// Builds the step timeline for `passes` (in network order) across
/// `devices` data-parallel replicas.
///
/// Compute runs serially per device: forward `0..L`, then for each layer
/// in reverse order dgrad followed by wgrad. Layer `i`'s gradient is
/// ready when its wgrad span ends; gradients bucket up in that order
/// ([`bucketize`] over the reverse-layer payload list), and the
/// communication channel runs buckets back-to-back, each starting at its
/// ready time at the earliest — or only after *all* compute when
/// `overlap` is off. `all_reduce_seconds` prices one bucket's exchange
/// from its byte count (typically a closure over
/// [`crate::topology::Topology::all_reduce_seconds`] or the scalar
/// [`crate::Interconnect`] formula).
pub fn schedule_step(
    backend: &str,
    gpu: &str,
    devices: u32,
    passes: &[LayerPasses],
    bucket_bytes: u64,
    overlap: bool,
    all_reduce_seconds: impl Fn(f64) -> f64,
) -> StepTimeline {
    let g = devices.max(1);
    let mut compute = Vec::with_capacity(3 * passes.len());
    let mut t = 0.0f64;
    let span = |label: &str, kind: SpanKind, dur: f64, t: &mut f64| {
        let start = *t;
        *t += dur;
        Span {
            label: label.to_string(),
            kind,
            start_seconds: start,
            end_seconds: *t,
        }
    };
    for p in passes {
        compute.push(span(&p.label, SpanKind::Forward, p.forward_seconds, &mut t));
    }
    // Backward in reverse layer order; record each gradient's ready time.
    let mut ready = Vec::with_capacity(passes.len());
    for p in passes.iter().rev() {
        if let Some(d) = p.dgrad_seconds {
            compute.push(span(&p.label, SpanKind::Dgrad, d, &mut t));
        }
        compute.push(span(&p.label, SpanKind::Wgrad, p.wgrad_seconds, &mut t));
        ready.push(t);
    }
    let compute_end = t;

    // Buckets over the ready-ordered (reverse-layer) gradient list.
    let grads: Vec<u64> = passes.iter().rev().map(|p| p.grad_bytes).collect();
    let labels: Vec<&str> = passes.iter().rev().map(|p| p.label.as_str()).collect();
    let buckets = bucketize(&grads, bucket_bytes);

    // The serial communication channel. `comm_seconds` and the serial
    // chain accumulate in the same order as the overlap-off schedule, so
    // the `step <= serial` bound is exact in floating point.
    let mut comm = Vec::with_capacity(buckets.len());
    let mut chan_end = 0.0f64;
    let mut comm_seconds = 0.0f64;
    let mut serial_end = compute_end;
    for (k, b) in buckets.iter().enumerate() {
        let dur = all_reduce_seconds(b.bytes as f64);
        let bucket_ready = b.items.iter().map(|&i| ready[i]).fold(0.0f64, f64::max);
        let earliest = if overlap { bucket_ready } else { compute_end };
        let start = earliest.max(chan_end);
        chan_end = start + dur;
        comm_seconds += dur;
        serial_end += dur;
        comm.push(Span {
            label: bucket_label(k, b, &labels),
            kind: SpanKind::AllReduce,
            start_seconds: start,
            end_seconds: chan_end,
        });
    }

    let step_seconds = compute_end.max(chan_end);
    let exposed = (chan_end - compute_end).max(0.0);
    StepTimeline {
        backend: backend.to_string(),
        gpu: gpu.to_string(),
        devices: g,
        overlap,
        bucket_bytes,
        per_device: (0..g)
            .map(|device| DeviceTimeline {
                device,
                compute: compute.clone(),
                comm: comm.clone(),
                exposed_comm_seconds: exposed,
            })
            .collect(),
        compute_seconds: compute_end,
        comm_seconds,
        exposed_comm_seconds: exposed,
        step_seconds,
        // Accumulated in the same order as the overlap-off channel
        // chain, so overlap-off yields step == serial bitwise.
        serial_seconds: serial_end,
    }
}

/// One layer's three pass workloads plus its gradient payload — the
/// per-layer unit a step evaluation expands into.
#[derive(Debug)]
struct PassWorkloads {
    label: String,
    fwd: ConvLayer,
    dgrad: Option<ConvLayer>,
    wgrad: ConvLayer,
    grad_bytes: u64,
}

/// Where a step evaluation's per-layer replays come from. The step
/// assembly (pass expansion, shape dedup, bucketed schedule) is
/// identical whether the replays run in-process or on a fleet of
/// executor processes; only this source differs. Implementations must
/// return one result per input layer, in input order, and produce
/// measurements bitwise identical to the local
/// [`Simulator::run_sharded`]/`run_multi_fabric` paths — the fleet's
/// merge contract.
pub trait ReplaySource {
    /// Measures every layer under `Single`/`Sharded` parallelism.
    ///
    /// # Errors
    ///
    /// Propagates replay failures (a fleet source adds dispatch and
    /// merge failures).
    fn measure_all(
        &self,
        layers: &[&ConvLayer],
        parallelism: &Parallelism,
    ) -> Result<Vec<crate::Measurement>, Error>;

    /// Measures every layer as a `devices`-wide multi-GPU replay under
    /// the given fabric.
    ///
    /// # Errors
    ///
    /// Propagates replay failures (a fleet source adds dispatch and
    /// merge failures).
    fn multi_all(
        &self,
        layers: &[&ConvLayer],
        devices: u32,
        interconnect: crate::interconnect::InterconnectKind,
        topology: Option<crate::topology::TopologyKind>,
    ) -> Result<Vec<MultiGpuMeasurement>, Error>;
}

/// The in-process [`ReplaySource`]: replays fan across this process's
/// cores via rayon — the default behind
/// [`Backend::evaluate_step`](delta_model::backend::Backend::evaluate_step)
/// for [`Simulator`].
#[derive(Debug, Clone, Copy)]
pub struct LocalReplays<'a>(pub &'a Simulator);

impl ReplaySource for LocalReplays<'_> {
    fn measure_all(
        &self,
        layers: &[&ConvLayer],
        parallelism: &Parallelism,
    ) -> Result<Vec<crate::Measurement>, Error> {
        let run_one = |l: &ConvLayer| match parallelism {
            Parallelism::Sharded { workers } => self.0.run_sharded(l, (*workers).max(1)),
            _ => self.0.run_sequential(l),
        };
        Ok(layers.par_iter().map(|l| run_one(l)).collect())
    }

    fn multi_all(
        &self,
        layers: &[&ConvLayer],
        devices: u32,
        interconnect: crate::interconnect::InterconnectKind,
        topology: Option<crate::topology::TopologyKind>,
    ) -> Result<Vec<MultiGpuMeasurement>, Error> {
        Ok(layers
            .par_iter()
            .map(|l| self.0.run_multi_fabric(l, devices, interconnect, topology))
            .collect())
    }
}

impl Simulator {
    /// Answers one [`StepQuery`]: the per-layer forward/dgrad/wgrad
    /// table *and* the scheduled timeline, both derived from **one**
    /// replay per unique transformed layer shape (the memoized map PR 4
    /// kept private to the timeline now feeds the table too, which is
    /// what halves `--overlap on`'s cost).
    ///
    /// Under [`Parallelism::Multi`], per-pass compute times are the
    /// multi-GPU replay's per-device critical path
    /// ([`MultiGpuMeasurement::step_seconds`]: busiest device plus halo
    /// transfers); gradient payloads are the layers' filter footprints;
    /// all-reduce durations come from the query's
    /// interconnect/topology, with the topology graph built once for
    /// the whole step. The returned timeline always satisfies
    /// [`StepTimeline::bounds_hold`]. Under `Single`/`Sharded`, the
    /// rows come from the corresponding on-device replay and the
    /// timeline is the serial compute schedule (no communication
    /// stream).
    ///
    /// # Errors
    ///
    /// Propagates GPU validation and backward-pass construction
    /// failures.
    pub(crate) fn evaluate_step_query(&self, query: &StepQuery) -> Result<StepEvaluation, Error> {
        self.evaluate_step_with(query, &LocalReplays(self))
    }

    /// The step evaluation with the replay source made
    /// explicit: the step assembly (pass expansion, shape dedup,
    /// all-reduce pricing, bucketed schedule) runs here, and `replays`
    /// supplies the per-layer measurements — in-process
    /// ([`LocalReplays`]) or distributed across a fleet. Because a
    /// conforming source returns measurements bitwise identical to the
    /// local ones, the assembled table and timeline are bitwise
    /// identical too.
    ///
    /// # Errors
    ///
    /// Propagates GPU validation, backward-pass construction, and
    /// replay-source failures.
    pub fn evaluate_step_with(
        &self,
        query: &StepQuery,
        replays: &impl ReplaySource,
    ) -> Result<StepEvaluation, Error> {
        self.gpu().validate()?;

        // Expand each layer into its pass workloads (pure shape
        // transforms), then dedup the transformed shapes: a deep
        // ResNet-style step collapses to a handful of unique replays,
        // shared across passes when their transforms coincide.
        let passes: Vec<PassWorkloads> = query
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                Ok(PassWorkloads {
                    label: l.label().to_string(),
                    fwd: l.clone(),
                    dgrad: if i == 0 {
                        None
                    } else {
                        Some(training::dgrad_layer(l)?)
                    },
                    wgrad: training::wgrad_layer(l)?,
                    grad_bytes: l.filter_bytes(),
                })
            })
            .collect::<Result<_, Error>>()?;
        let mut unique: Vec<&ConvLayer> = Vec::new();
        let mut index: HashMap<LayerShape, usize> = HashMap::new();
        for p in &passes {
            for l in [Some(&p.fwd), p.dgrad.as_ref(), Some(&p.wgrad)]
                .into_iter()
                .flatten()
            {
                index.entry(LayerShape::of(l)).or_insert_with(|| {
                    unique.push(l);
                    unique.len() - 1
                });
            }
        }

        let table = |rows: Vec<TrainingRow>| TrainingStepEvaluation {
            backend: "sim".to_string(),
            gpu: self.gpu().name().to_string(),
            rows,
        };

        match &query.parallelism {
            Parallelism::Multi {
                devices,
                interconnect,
                topology,
            } => {
                self.require_homogeneous(devices)?;
                let g = (devices.len() as u32).max(1);
                // One replay per unique shape — the single source both
                // views below are derived from.
                let runs: Vec<MultiGpuMeasurement> =
                    replays.multi_all(&unique, g, *interconnect, *topology)?;
                let of = |l: &ConvLayer| &runs[index[&LayerShape::of(l)]];

                // The graph is a function of (kind, devices) only: build
                // it once for the whole step and share it between the
                // per-row all-reduce charges and the scheduler, instead
                // of rebuilding per layer or per bucket.
                let base = interconnect.params();
                let topo = topology.map(|kind| Topology::build(kind, g));
                let all_reduce = |payload: f64| match &topo {
                    None => (
                        base.all_reduce_bytes(payload, g),
                        base.all_reduce_seconds(payload, g),
                    ),
                    Some(t) => (
                        t.all_reduce_bytes(&base, payload),
                        t.all_reduce_seconds(&base, payload),
                    ),
                };

                let rows: Vec<TrainingRow> = passes
                    .iter()
                    .map(|p| TrainingRow {
                        label: p.label.clone(),
                        forward: of(&p.fwd).to_estimate(self.gpu()),
                        dgrad: p.dgrad.as_ref().map(|d| of(d).to_estimate(self.gpu())),
                        wgrad: {
                            let mut est = of(&p.wgrad).to_estimate(self.gpu());
                            let (ar_bytes, ar_seconds) = all_reduce(p.grad_bytes as f64);
                            est.link_bytes += ar_bytes;
                            est.seconds += ar_seconds;
                            est.cycles += self.gpu().seconds_to_clks(ar_seconds);
                            est
                        },
                    })
                    .collect();

                let layer_passes: Vec<LayerPasses> = passes
                    .iter()
                    .map(|p| LayerPasses {
                        label: p.label.clone(),
                        forward_seconds: of(&p.fwd).step_seconds(self.gpu()),
                        dgrad_seconds: p.dgrad.as_ref().map(|d| of(d).step_seconds(self.gpu())),
                        wgrad_seconds: of(&p.wgrad).step_seconds(self.gpu()),
                        grad_bytes: p.grad_bytes,
                    })
                    .collect();
                let timeline = schedule_step(
                    "sim",
                    self.gpu().name(),
                    g,
                    &layer_passes,
                    u64::from(query.bucket_mb) << 20,
                    query.overlap,
                    |bytes| all_reduce(bytes).1,
                );
                Ok(StepEvaluation {
                    table: table(rows),
                    timeline,
                })
            }
            Parallelism::Single | Parallelism::Sharded { .. } => {
                let runs: Vec<crate::Measurement> =
                    replays.measure_all(&unique, &query.parallelism)?;
                let of = |l: &ConvLayer| runs[index[&LayerShape::of(l)]].to_estimate(self.gpu());
                let rows: Vec<TrainingRow> = passes
                    .iter()
                    .map(|p| TrainingRow {
                        label: p.label.clone(),
                        forward: of(&p.fwd),
                        dgrad: p.dgrad.as_ref().map(&of),
                        wgrad: of(&p.wgrad),
                    })
                    .collect();
                let timeline = StepTimeline::serial_compute(
                    "sim",
                    self.gpu().name(),
                    1,
                    serial_step_spans(&query.layers, &rows),
                );
                Ok(StepEvaluation {
                    table: table(rows),
                    timeline,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketizer_partitions_exactly() {
        let grads = [10u64, 20, 5, 40, 1];
        let buckets = bucketize(&grads, 25);
        // 10+20 >= 25 | 5+40 >= 25 | 1 (tail).
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].items, vec![0, 1]);
        assert_eq!(buckets[0].bytes, 30);
        assert_eq!(buckets[1].items, vec![2, 3]);
        assert_eq!(buckets[1].bytes, 45);
        assert_eq!(buckets[2].items, vec![4]);
        assert_eq!(buckets[2].bytes, 1);
        // Exhaustive and ordered.
        let all: Vec<usize> = buckets.iter().flat_map(|b| b.items.clone()).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        let total: u64 = buckets.iter().map(|b| b.bytes).sum();
        assert_eq!(total, grads.iter().sum::<u64>());
    }

    #[test]
    fn bucketizer_edge_cases() {
        // Bucket larger than the whole model: one bucket.
        let b = bucketize(&[1, 2, 3], 1 << 30);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].bytes, 6);
        // Zero threshold: one bucket per gradient.
        let b = bucketize(&[1, 2, 3], 0);
        assert_eq!(b.len(), 3);
        // Empty input: no buckets.
        assert!(bucketize(&[], 25).is_empty());
        // A single oversized gradient keeps its own bucket.
        let b = bucketize(&[100, 1, 1], 10);
        assert_eq!(b[0].items, vec![0]);
        assert_eq!(b[0].bytes, 100);
    }

    fn synthetic_passes() -> Vec<LayerPasses> {
        (0..4)
            .map(|i| LayerPasses {
                label: format!("l{i}"),
                forward_seconds: 1.0,
                dgrad_seconds: (i > 0).then_some(1.5),
                wgrad_seconds: 1.0,
                grad_bytes: 8 << 20,
            })
            .collect()
    }

    #[test]
    fn overlap_hides_comm_behind_backward_compute() {
        let passes = synthetic_passes();
        // 1 ms per bucket all-reduce, one 8 MiB gradient per bucket.
        let comm = |_bytes: f64| 1e-3;
        let overlapped = schedule_step("sim", "g", 4, &passes, 8 << 20, true, comm);
        let serial = schedule_step("sim", "g", 4, &passes, 8 << 20, false, comm);
        assert_eq!(overlapped.per_device.len(), 4);
        assert_eq!(overlapped.per_device[0].comm.len(), 4, "4 buckets");
        // Compute: 4 fwd + 3 dgrad + 4 wgrad = 12.5 s; comm 4 ms.
        assert_eq!(overlapped.compute_seconds, 12.5);
        assert_eq!(overlapped.comm_seconds, serial.comm_seconds);
        // The first three buckets finish before compute does; only the
        // tail bucket can stay exposed.
        assert!(overlapped.exposed_comm_seconds <= 1e-3 + 1e-12);
        assert!(overlapped.step_seconds < serial.step_seconds);
        // Serial mode: step == serial exactly (same accumulation order)
        // and everything is exposed (up to fp re-association of the
        // chained channel against the plain duration sum).
        assert_eq!(serial.step_seconds, serial.serial_seconds);
        assert!(
            (serial.exposed_comm_seconds - serial.comm_seconds).abs() < 1e-12,
            "{} vs {}",
            serial.exposed_comm_seconds,
            serial.comm_seconds
        );
        assert!(serial.exposed_fraction() > 0.99);
        // Bounds hold on both.
        assert!(overlapped.bounds_hold());
        assert!(serial.bounds_hold());
        // The serial totals agree across modes.
        assert!((overlapped.serial_seconds - serial.serial_seconds).abs() < 1e-12);
    }

    #[test]
    fn comm_bound_step_is_floored_by_the_channel() {
        // Make communication dominate: the step time must be >= total
        // comm and the exposed fraction close to 1.
        let passes = synthetic_passes();
        let comm = |_bytes: f64| 10.0;
        let t = schedule_step("sim", "g", 2, &passes, 8 << 20, true, comm);
        assert_eq!(t.comm_seconds, 40.0);
        assert!(t.step_seconds >= 40.0);
        assert!(t.bounds_hold());
        assert!(t.exposed_fraction() > 0.5);
        assert!(t.speedup_over_serial() >= 1.0);
    }

    #[test]
    fn comm_spans_are_ready_ordered_and_non_overlapping() {
        let passes = synthetic_passes();
        let t = schedule_step("sim", "g", 2, &passes, 8 << 20, true, |b| b / 1e12);
        let comm = &t.per_device[0].comm;
        for w in comm.windows(2) {
            assert!(w[0].end_seconds <= w[1].start_seconds + 1e-15);
        }
        // Bucket 0 covers the *last* layer (first gradient ready).
        assert!(comm[0].label.contains("l3"), "{}", comm[0].label);
        assert!(comm[3].label.contains("l0"), "{}", comm[3].label);
        // Compute spans run forward l0..l3 then backward l3..l0.
        let c = &t.per_device[0].compute;
        assert_eq!(c[0].label, "l0");
        assert_eq!(c[0].kind, SpanKind::Forward);
        assert_eq!(c[4].label, "l3");
        assert_eq!(c[4].kind, SpanKind::Dgrad);
        assert_eq!(c.last().unwrap().label, "l0");
        assert_eq!(c.last().unwrap().kind, SpanKind::Wgrad);
    }

    #[test]
    fn empty_network_schedules_to_zero() {
        let t = schedule_step("sim", "g", 2, &[], 25 << 20, true, |_| 1.0);
        assert_eq!(t.step_seconds, 0.0);
        assert_eq!(t.comm_seconds, 0.0);
        assert!(t.bounds_hold());
        assert!(t.per_device[0].compute.is_empty());
        assert!(t.per_device[0].comm.is_empty());
    }
}
