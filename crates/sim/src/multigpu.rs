//! Multi-GPU simulation: device-level partitioning on top of the
//! mergeable-hierarchy contract.
//!
//! PR 2's shard layer established the invariant this module builds on:
//! every tile column replays from identical cold state no matter who
//! owns it, and per-owner [`HierarchyStats`](crate::HierarchyStats)
//! snapshots merge exactly when walked in ascending column order. A
//! *device* is just a shard with a price tag: [`DevicePlan`] assigns
//! each GPU a contiguous column range (and, for the data-parallel
//! training view, a minibatch slice), every device replays its columns
//! against private hierarchies, and the merged measurement is **bitwise
//! identical to the single-device sharded run** — by construction, for
//! every device count.
//!
//! What makes G devices different from G worker threads is the
//! [`Interconnect`]: non-owner
//! devices refetch the layer's IFmap over links (the halo flow), and a
//! data-parallel training step all-reduces weight gradients once per
//! layer. Under the `ideal` preset both flows cost zero bytes and zero
//! seconds, so the interconnect model is the *only* source of multi-GPU
//! divergence and can be validated in isolation — the same
//! testing-by-identity trick the shard layer used.

use crate::interconnect::Interconnect;
use crate::shard::ShardPlan;
use crate::sim::{Measurement, Simulator};
use delta_model::backend::LayerEstimate;
use delta_model::{ConvLayer, GpuSpec};
use std::ops::Range;

/// A partition of one layer's work across `G` devices: per-device GPU
/// specifications, a contiguous tile-column range each device replays
/// (the model-parallel view the simulator executes), and a minibatch
/// slice each device owns (the data-parallel view the training step's
/// all-reduce accounting uses).
///
/// Column ranges reuse [`ShardPlan`]'s balanced/disjoint/exhaustive
/// split, so concatenating the devices' ranges in order re-yields
/// `0..columns` — the property that makes the merged multi-device
/// measurement bitwise identical to the single-device sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePlan {
    gpus: Vec<GpuSpec>,
    columns: ShardPlan,
    minibatch: Vec<Range<u32>>,
}

impl DevicePlan {
    /// Partitions `columns` tile columns and `batch` minibatch samples
    /// across `devices` copies of `gpu` (`devices = 0` is clamped to 1).
    pub fn partition(gpu: &GpuSpec, columns: u64, batch: u32, devices: u32) -> DevicePlan {
        let g = devices.max(1);
        let b = u64::from(batch);
        DevicePlan {
            gpus: (0..g).map(|_| gpu.clone()).collect(),
            columns: ShardPlan::partition(columns, g),
            minibatch: (0..u64::from(g))
                .map(|i| {
                    let lo = i * b / u64::from(g);
                    let hi = (i + 1) * b / u64::from(g);
                    (lo as u32)..(hi as u32)
                })
                .collect(),
        }
    }

    /// The plan for `layer` as `sim` would tile it.
    pub fn for_layer(sim: &Simulator, layer: &ConvLayer, devices: u32) -> DevicePlan {
        DevicePlan::partition(
            sim.gpu(),
            sim.tiling(layer).cta_columns(),
            layer.batch(),
            devices,
        )
    }

    /// Number of devices (including idle ones).
    pub fn devices(&self) -> u32 {
        self.gpus.len() as u32
    }

    /// The per-device GPU specifications (homogeneous today; the plan
    /// carries one spec per device so heterogeneity stays a local
    /// change).
    pub fn gpus(&self) -> &[GpuSpec] {
        &self.gpus
    }

    /// Per-device tile-column ranges, in device order.
    pub fn column_ranges(&self) -> &[Range<u64>] {
        self.columns.shards()
    }

    /// Per-device minibatch sample ranges, in device order.
    pub fn minibatch_ranges(&self) -> &[Range<u32>] {
        &self.minibatch
    }

    /// Devices that own at least one tile column under the plan's
    /// column-axis view. The simulator's actual replay may spread a
    /// narrow layer's tall columns over *more* devices via row-level
    /// sharding — [`MultiGpuMeasurement::active_devices`] reports the
    /// effective count.
    pub fn active_devices(&self) -> u32 {
        self.columns
            .shards()
            .iter()
            .filter(|r| !r.is_empty())
            .count() as u32
    }

    /// Devices with no columns to replay.
    pub fn idle_devices(&self) -> u32 {
        self.devices() - self.active_devices()
    }
}

/// One layer's multi-GPU simulation outcome: the merged measurement
/// (identical to the single-device sharded run), the per-device critical
/// paths, and the interconnect charges.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiGpuMeasurement {
    /// The merged per-device measurements — bitwise identical to
    /// [`Simulator::run_sharded`]`(layer, 1)` for every device count and
    /// interconnect.
    pub merged: Measurement,
    /// Cycles each device spends on its own columns (prologue included;
    /// 0 for idle devices), in device order.
    pub per_device_cycles: Vec<f64>,
    /// Bytes crossing the interconnect (halo IFmap refetches; topology
    /// factor applied). 0 under the `ideal` preset and for single-device
    /// runs.
    pub link_bytes: f64,
    /// Seconds spent in interconnect transfers.
    pub link_seconds: f64,
    /// Devices the plan spanned.
    pub devices: u32,
    /// Devices that performed replay work (whole columns, or row-level
    /// sub-ranges of a tall column when devices outnumber columns).
    pub active_devices: u32,
}

impl MultiGpuMeasurement {
    /// The busiest device's cycles — the on-device critical path of the
    /// multi-GPU execution.
    pub fn max_device_cycles(&self) -> f64 {
        self.per_device_cycles.iter().copied().fold(0.0, f64::max)
    }

    /// Wall-clock seconds of the multi-GPU step: the busiest device plus
    /// the interconnect transfers (devices compute concurrently; link
    /// traffic serializes behind the slowest one).
    pub fn step_seconds(&self, gpu: &GpuSpec) -> f64 {
        gpu.clks_to_seconds(self.max_device_cycles()) + self.link_seconds
    }

    /// Converts to the backend-neutral estimate.
    ///
    /// Traffic and time are the merged single-device-equivalent totals
    /// (so the `ideal` interconnect yields a byte-identical estimate for
    /// every device count) with the interconnect charges added on top:
    /// `link_bytes` carries the cross-device traffic and `seconds` /
    /// `cycles` grow by the transfer time. Per-device speedup questions
    /// go through [`MultiGpuMeasurement::step_seconds`] instead.
    pub fn to_estimate(&self, gpu: &GpuSpec) -> LayerEstimate {
        let mut est = self.merged.to_estimate(gpu);
        est.link_bytes = self.link_bytes;
        est.seconds += self.link_seconds;
        est.cycles += gpu.seconds_to_clks(self.link_seconds);
        est
    }
}

impl Simulator {
    /// Runs `layer` partitioned across `devices` GPUs ([`DevicePlan`]),
    /// each replaying its tile-column range against private hierarchies,
    /// and charges cross-device halo traffic through the configured
    /// interconnect ([`crate::SimConfig::interconnect`]).
    ///
    /// The merged measurement inherits the shard layer's contract: it is
    /// **bitwise identical for every device count** (and equal to
    /// [`Simulator::run_sharded`] at any worker count). Only
    /// `link_bytes`/`link_seconds` and the per-device critical paths
    /// vary with `devices` — and under the `ideal` interconnect the link
    /// charges are exactly zero.
    pub fn run_multi(&self, layer: &ConvLayer, devices: u32) -> MultiGpuMeasurement {
        self.run_multi_fabric(
            layer,
            devices,
            self.config().interconnect,
            self.config().topology,
        )
    }

    /// [`Simulator::run_multi`] with the fabric named explicitly instead
    /// of read from [`crate::SimConfig`] — the primitive behind
    /// query-driven evaluation, where
    /// [`Parallelism::Multi`](delta_model::query::Parallelism) carries
    /// its own interconnect and topology.
    pub fn run_multi_fabric(
        &self,
        layer: &ConvLayer,
        devices: u32,
        interconnect: crate::interconnect::InterconnectKind,
        topology: Option<crate::topology::TopologyKind>,
    ) -> MultiGpuMeasurement {
        let plan = DevicePlan::for_layer(self, layer, devices);
        let run = self.run_sharded_detail(layer, plan.devices());
        self.multi_from_run(layer, run, plan.devices(), interconnect, topology)
    }

    /// Prices an already-merged G-shard [`ShardedRun`](crate::sim::ShardedRun)
    /// as a `devices`-wide multi-GPU measurement — the fabric half of
    /// [`Simulator::run_multi_fabric`], split out so a fleet
    /// coordinator can distribute the replay, merge it with
    /// [`Simulator::merge_column_replays`](crate::sim::Simulator::merge_column_replays)
    /// /
    /// [`Simulator::merge_segment_replays`](crate::sim::Simulator::merge_segment_replays)
    /// at `n_workers = devices`, and price the result through exactly
    /// this code.
    pub fn multi_from_run(
        &self,
        layer: &ConvLayer,
        run: crate::sim::ShardedRun,
        devices: u32,
        interconnect: crate::interconnect::InterconnectKind,
        topology: Option<crate::topology::TopologyKind>,
    ) -> MultiGpuMeasurement {
        // Scalar preset, or topology-derived parameters when a graph is
        // named.
        let ic: Interconnect = crate::sim::fabric_of(interconnect, topology, devices);
        // Devices that actually replayed work. With row-level sharding
        // this can exceed the column count ([`DevicePlan::
        // active_devices`] is the column-axis view): a narrow layer's
        // tall columns split across devices, and each participating
        // device refetches the IFmap halo.
        let active = run.per_shard_cycles.iter().filter(|c| **c > 0.0).count() as u32;
        let ifmap = layer.ifmap_bytes() as f64;
        MultiGpuMeasurement {
            merged: run.measurement,
            per_device_cycles: run.per_shard_cycles,
            link_bytes: ic.halo_bytes(ifmap, active),
            link_seconds: ic.halo_seconds(ifmap, active),
            devices,
            active_devices: active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::InterconnectKind;
    use crate::SimConfig;

    fn wide_layer() -> ConvLayer {
        // Co = 512 -> LARGE tile -> 4 tile columns.
        ConvLayer::builder("wide")
            .batch(2)
            .input(16, 14, 14)
            .output_channels(512)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    fn sim(kind: InterconnectKind) -> Simulator {
        Simulator::new(
            GpuSpec::titan_xp(),
            SimConfig {
                interconnect: kind,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn plan_partitions_columns_and_minibatch() {
        let plan = DevicePlan::partition(&GpuSpec::titan_xp(), 16, 64, 4);
        assert_eq!(plan.devices(), 4);
        assert_eq!(plan.active_devices(), 4);
        assert_eq!(plan.idle_devices(), 0);
        assert_eq!(plan.gpus().len(), 4);
        // Columns: contiguous, exhaustive, in order.
        let cols: Vec<u64> = plan
            .column_ranges()
            .iter()
            .flat_map(|r| r.clone())
            .collect();
        assert_eq!(cols, (0..16).collect::<Vec<_>>());
        // Minibatch: 64 samples, 16 each.
        let samples: Vec<u32> = plan
            .minibatch_ranges()
            .iter()
            .flat_map(|r| r.clone())
            .collect();
        assert_eq!(samples, (0..64).collect::<Vec<_>>());
        assert!(plan
            .minibatch_ranges()
            .iter()
            .all(|r| r.end - r.start == 16));
    }

    #[test]
    fn surplus_devices_idle() {
        let plan = DevicePlan::partition(&GpuSpec::titan_xp(), 2, 8, 6);
        assert_eq!(plan.devices(), 6);
        assert_eq!(plan.active_devices(), 2);
        assert_eq!(plan.idle_devices(), 4);
        // Zero devices clamps to one.
        let one = DevicePlan::partition(&GpuSpec::titan_xp(), 4, 8, 0);
        assert_eq!(one.devices(), 1);
        assert_eq!(one.active_devices(), 1);
    }

    #[test]
    fn ideal_multi_gpu_is_bitwise_identical_to_sharded() {
        let l = wide_layer();
        let s = sim(InterconnectKind::Ideal);
        let reference = s.run_sharded(&l, 1);
        for g in [1, 2, 4, 8] {
            let m = s.run_multi(&l, g);
            assert_eq!(m.merged, reference, "devices={g}");
            assert_eq!(m.link_bytes, 0.0, "devices={g}");
            assert_eq!(m.link_seconds, 0.0, "devices={g}");
            assert_eq!(m.per_device_cycles.len(), g.max(1) as usize);
        }
    }

    #[test]
    fn per_device_cycles_shrink_with_more_devices() {
        let l = wide_layer();
        let s = sim(InterconnectKind::Ideal);
        let one = s.run_multi(&l, 1);
        let four = s.run_multi(&l, 4);
        assert!(four.max_device_cycles() < one.max_device_cycles());
        // Total column work is conserved (each device re-charges only
        // the prologue).
        assert!(four.step_seconds(s.gpu()) < one.step_seconds(s.gpu()));
        // Idle devices report zero cycles.
        let eight = s.run_multi(&l, 8);
        assert_eq!(eight.active_devices, 4);
        assert_eq!(
            eight
                .per_device_cycles
                .iter()
                .filter(|c| **c == 0.0)
                .count(),
            4
        );
    }

    #[test]
    fn narrow_layer_spreads_over_more_devices_than_columns() {
        // Co = 128 -> at most 2 tile columns, but 64 samples make the
        // columns tall: row-level sharding hands every device a batch
        // sub-range, so the fleet no longer idles at 2.
        let l = ConvLayer::builder("narrow")
            .batch(64)
            .input(64, 14, 14)
            .output_channels(128)
            .filter(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let s = sim(InterconnectKind::Ideal);
        let cols = s.tiling(&l).cta_columns();
        assert!(cols <= 2);
        let reference = s.run_sharded(&l, 1);
        let eight = s.run_multi(&l, 8);
        assert_eq!(eight.merged, reference, "identity survives the row axis");
        assert!(
            eight.active_devices > cols as u32,
            "active {} should beat the {cols}-column cap",
            eight.active_devices
        );
        assert_eq!(
            eight.per_device_cycles.iter().filter(|c| **c > 0.0).count() as u32,
            eight.active_devices
        );
        // More devices than (columns x simulated batches) still idle.
        assert!(eight.max_device_cycles() < s.run_multi(&l, 1).max_device_cycles());
    }

    #[test]
    fn nonideal_interconnect_charges_halo_traffic() {
        let l = wide_layer();
        let ideal = sim(InterconnectKind::Ideal).run_multi(&l, 4);
        for kind in [InterconnectKind::NvLink, InterconnectKind::Pcie] {
            let m = sim(kind).run_multi(&l, 4);
            assert_eq!(m.merged, ideal.merged, "{kind}: merge must not change");
            assert!(m.link_bytes > 0.0, "{kind}");
            assert!(m.link_seconds > 0.0, "{kind}");
            // Expected volume: (active-1) x IFmap x topology factor.
            let expected = kind.params().effective_bytes(3.0 * l.ifmap_bytes() as f64);
            assert!((m.link_bytes - expected).abs() < 1e-9, "{kind}");
            // Single device: nothing crosses links even on slow fabrics.
            let single = sim(kind).run_multi(&l, 1);
            assert_eq!(single.link_bytes, 0.0, "{kind}");
            assert_eq!(single.link_seconds, 0.0, "{kind}");
        }
    }

    #[test]
    fn estimate_folds_link_charges_on_top_of_merged() {
        let l = wide_layer();
        let gpu = GpuSpec::titan_xp();
        let ideal = sim(InterconnectKind::Ideal).run_multi(&l, 4);
        let ideal_est = ideal.to_estimate(&gpu);
        assert_eq!(ideal_est.link_bytes, 0.0);
        assert_eq!(ideal_est, ideal.merged.to_estimate(&gpu), "zero-cost");

        let nv = sim(InterconnectKind::NvLink).run_multi(&l, 4);
        let nv_est = nv.to_estimate(&gpu);
        assert_eq!(nv_est.link_bytes, nv.link_bytes);
        assert!(nv_est.seconds > ideal_est.seconds);
        assert!(nv_est.cycles > ideal_est.cycles);
        assert!(nv_est.dram_and_link_bytes() > ideal_est.dram_and_link_bytes());
        // On-chip and DRAM traffic are untouched by the interconnect.
        assert_eq!(nv_est.l1_bytes, ideal_est.l1_bytes);
        assert_eq!(nv_est.dram_read_bytes, ideal_est.dram_read_bytes);
    }
}
