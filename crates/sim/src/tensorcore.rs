//! Tensor-core datapath selection and MMA-tile compute timing.
//!
//! The paper's simulator charges each CTA main loop a compute time
//! `t_CS = blkM·blkN·blkK / FFMA-MACs-per-clk` (Eq. 13 structure). GEMM
//! and attention layers ([`LayerKind`]) on tensor-core devices execute
//! the same loop on MMA units instead: the CTA tile's `blkM × blkN ×
//! blkK` product is quantized to whole MMA instruction tiles
//! ([`MmaShape`], e.g. 16×16×16 Volta HMMA or 16×8×16 Ampere) and
//! charged at the device's tensor-core MAC rate.
//!
//! Everything *outside* the compute term is unchanged — addresses,
//! coalescing, cache replay, the CTA-tile column/segment [`ShardPlan`]
//! contract, and the exact-merge guarantees all operate on the layer's
//! conv-shaped embedding. The datapath is a pure function of
//! `(GpuSpec, LayerKind)`, so every worker, shard, and fleet executor
//! selects the same one independently and sharded/fleet results stay
//! bitwise identical for every worker count.
//!
//! [`ShardPlan`]: crate::shard::ShardPlan

use delta_model::tiling::CtaTile;
use delta_model::{GpuSpec, LayerKind, MmaShape};

/// Which arithmetic units execute a layer's main-loop MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datapath {
    /// The FP32 FFMA pipeline the paper models — always used for conv
    /// layers, and for every layer on devices without tensor cores.
    Ffma,
    /// The tensor-core (MMA) pipeline, with the device's instruction
    /// tile shape.
    TensorCore(MmaShape),
}

impl Datapath {
    /// Selects the datapath for `kind` on `gpu`: tensor cores iff the
    /// layer is a GEMM/attention workload *and* the device has them.
    /// Conv layers always use FFMA — the paper's CNN results are
    /// untouched by this subsystem.
    pub fn select(gpu: &GpuSpec, kind: LayerKind) -> Datapath {
        match gpu.mma_shape() {
            Some(mma) if !kind.is_conv() && gpu.has_tensor_cores() => Datapath::TensorCore(mma),
            _ => Datapath::Ffma,
        }
    }

    /// Short name for spans and reports (`ffma` / `tensorcore`).
    pub fn label(&self) -> &'static str {
        match self {
            Datapath::Ffma => "ffma",
            Datapath::TensorCore(_) => "tensorcore",
        }
    }

    /// Whether this is the tensor-core pipeline.
    pub fn is_tensor_core(&self) -> bool {
        matches!(self, Datapath::TensorCore(_))
    }

    /// Compute clocks for one CTA main-loop iteration of `tile` on this
    /// datapath — the `t_CS` term of the timing engine.
    ///
    /// FFMA: `blkM·blkN·blkK / MACs-per-clk` (the paper's Eq. 13 term).
    /// Tensor cores: the loop issues `ceil(blkM/m)·ceil(blkN/n)·
    /// ceil(blkK/k)` MMA instructions, each worth `m·n·k` MACs, at the
    /// tensor-core MAC rate — partial tiles pay for a full MMA, so
    /// ragged CTA tiles lose efficiency exactly as real kernels do.
    pub fn loop_compute_clks(&self, gpu: &GpuSpec, tile: CtaTile) -> f64 {
        match *self {
            Datapath::Ffma => {
                let macs =
                    f64::from(tile.blk_m()) * f64::from(tile.blk_n()) * f64::from(tile.blk_k());
                macs / gpu.macs_per_clk_per_sm()
            }
            Datapath::TensorCore(mma) => {
                let tiles = f64::from(tile.blk_m().div_ceil(mma.m))
                    * f64::from(tile.blk_n().div_ceil(mma.n))
                    * f64::from(tile.blk_k().div_ceil(mma.k));
                let macs_per_mma = f64::from(mma.m) * f64::from(mma.n) * f64::from(mma.k);
                tiles * macs_per_mma / gpu.tc_macs_per_clk_per_sm()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_model::ConvLayer;

    #[test]
    fn conv_layers_always_select_ffma() {
        let conv = LayerKind::Conv;
        assert_eq!(Datapath::select(&GpuSpec::titan_xp(), conv), Datapath::Ffma);
        assert_eq!(
            Datapath::select(&GpuSpec::v100_tensor(), conv),
            Datapath::Ffma,
            "conv stays on FFMA even with tensor cores present"
        );
    }

    #[test]
    fn gemm_selects_tensor_cores_only_on_capable_devices() {
        let gemm = ConvLayer::gemm("g", 128, 128, 64).unwrap().kind();
        assert_eq!(Datapath::select(&GpuSpec::v100(), gemm), Datapath::Ffma);
        let dp = Datapath::select(&GpuSpec::v100_tensor(), gemm);
        assert!(dp.is_tensor_core());
        assert_eq!(dp.label(), "tensorcore");
        let attn = ConvLayer::attention("a", 2, 64, 4, 32).unwrap().kind();
        assert!(Datapath::select(&GpuSpec::a100(), attn).is_tensor_core());
    }

    #[test]
    fn tensor_core_loop_is_faster_and_quantized() {
        let gpu = GpuSpec::v100_tensor();
        let tile = CtaTile::LARGE; // 128x128x8
        let ffma = Datapath::Ffma.loop_compute_clks(&gpu, tile);
        let mma = Datapath::select(&gpu, LayerKind::Gemm { m: 1, n: 1, k: 1 });
        let tc = mma.loop_compute_clks(&gpu, tile);
        assert!(tc < ffma, "tensor cores must beat FFMA: {tc} vs {ffma}");
        // blk_k = 8 < mma k = 16: the partial reduction tile is padded to
        // a whole MMA, so the charged MAC count exceeds the tile's MACs.
        let charged = tc * gpu.tc_macs_per_clk_per_sm();
        let actual = 128.0 * 128.0 * 8.0;
        assert!(charged > actual, "ragged tiles pay full MMAs: {charged}");
    }

    #[test]
    fn selection_is_deterministic_across_calls() {
        // The merge contract depends on every worker choosing the same
        // datapath from (gpu, kind) alone.
        let gpu = GpuSpec::a100();
        let kind = LayerKind::Attention {
            seq: 128,
            heads: 8,
            head_dim: 64,
        };
        let a = Datapath::select(&gpu, kind);
        let b = Datapath::select(&gpu, kind);
        assert_eq!(a, b);
        assert_eq!(
            a.loop_compute_clks(&gpu, CtaTile::MEDIUM),
            b.loop_compute_clks(&gpu, CtaTile::MEDIUM)
        );
    }
}
