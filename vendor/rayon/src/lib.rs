//! In-tree stand-in for `rayon` (offline build): data-parallel slice
//! iteration on top of `std::thread::scope`.
//!
//! Implements the subset the workspace uses — `slice.par_iter().map(f)
//! .collect::<Vec<_>>()` — with genuine multi-core execution: the input
//! is split into contiguous chunks, one per available core, each chunk is
//! mapped on its own scoped thread, and the chunk results are re-joined
//! in order, so the output order matches the sequential semantics
//! exactly. There is no work-stealing; for the coarse-grained work the
//! engine submits (whole-layer evaluations), static chunking is within
//! noise of a real scheduler.

use std::num::NonZeroUsize;

/// Number of worker threads to use (respects `RAYON_NUM_THREADS` like the
/// real crate; defaults to the number of available cores).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

std::thread_local! {
    /// Worker slot of the current thread, `None` outside any
    /// `par_iter` worker (mirrors the real crate's registry index).
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The index of the current thread within its pool, or `None` when
/// called from a thread not owned by the pool — same contract as the
/// real crate's `rayon::current_thread_index`. Callers use it to avoid
/// spawning a second tier of workers from inside a parallel region.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(std::cell::Cell::get)
}

/// The traits users import; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Parallel iterator types and conversion traits.
pub mod iter {
    use super::current_num_threads;

    /// Conversion of `&self` into a parallel iterator (the `par_iter`
    /// entry point).
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: Sync + 'data;

        /// Returns a parallel iterator over borrowed items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Operations available on parallel iterators.
    pub trait ParallelIterator: Sized {
        /// The element type produced.
        type Item: Send;

        /// Evaluates the pipeline, returning results in input order.
        fn run(self) -> Vec<Self::Item>;

        /// Maps each element through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Collects into `C` (only `Vec<Item>` — and types converting
        /// from it — are supported, which is what the workspace uses).
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.run())
        }
    }

    /// Borrowing parallel iterator over a slice.
    #[derive(Debug)]
    pub struct ParIter<'data, T: Sync> {
        pub(crate) items: &'data [T],
    }

    impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
        type Item = &'data T;

        fn run(self) -> Vec<&'data T> {
            self.items.iter().collect()
        }
    }

    /// A mapped parallel iterator.
    #[derive(Debug)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<'data, T, R, F> ParallelIterator for Map<ParIter<'data, T>, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        type Item = R;

        fn run(self) -> Vec<R> {
            parallel_map(self.base.items, &self.f)
        }
    }

    /// Maps `items` through `f` on up to [`current_num_threads`] scoped
    /// threads, preserving input order.
    fn parallel_map<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(slot, c)| {
                    scope.spawn(move || {
                        super::WORKER_INDEX.with(|w| w.set(Some(slot)));
                        c.iter().map(f).collect::<Vec<R>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_slices_and_small_inputs() {
        let v = [5u32];
        let out: Vec<u32> = v[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![6]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_index_set_inside_workers_only() {
        assert_eq!(crate::current_thread_index(), None, "main thread");
        let input: Vec<u32> = (0..64).collect();
        let indices: Vec<Option<usize>> = input
            .par_iter()
            .map(|_| crate::current_thread_index())
            .collect();
        if crate::current_num_threads() >= 2 {
            assert!(
                indices.iter().all(Option::is_some),
                "workers must see their slot"
            );
        }
        assert_eq!(crate::current_thread_index(), None, "main thread after");
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if crate::current_num_threads() < 2 {
            return; // single-core CI runner: nothing to assert
        }
        let input: Vec<u32> = (0..64).collect();
        let ids: Vec<String> = input
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                format!("{:?}", std::thread::current().id())
            })
            .collect();
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert!(unique.len() > 1, "expected work on more than one thread");
    }
}
