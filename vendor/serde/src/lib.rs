//! In-tree stand-in for the `serde` crate (the build environment has no
//! network access to crates.io), implementing the subset this repository
//! uses: `Serialize`/`Deserialize` traits with `#[derive]` support for
//! named-field structs and unit enums, routed through a JSON-like
//! [`Value`] tree that `serde_json` (the sibling shim) renders and parses.
//!
//! The design intentionally diverges from real serde's visitor
//! architecture — a value tree is dramatically simpler and is all the
//! round-trip (de)serialization in this repository needs. Swapping the
//! real serde back in requires no source changes in the workspace crates
//! because the trait names, derive names, and `serde_json` entry points
//! match.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the interchange format between the
/// `Serialize`/`Deserialize` traits and the `serde_json` front end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without a decimal point).
    U64(u64),
    /// Signed negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key when `self` is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error for an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// A value tree is trivially its own serialization, which lets callers
// build dynamic documents (or probe unknown ones, e.g. a version field)
// through the same `serde_json` entry points as typed data.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f.fract() == 0.0 && f >= 0.0 => f as u64,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).map(|n| n as usize)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let e = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(e.to_string().contains("string"));
    }
}
