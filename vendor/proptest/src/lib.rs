//! In-tree stand-in for `proptest` (offline build): property-based
//! testing over deterministically seeded random inputs.
//!
//! Supports the subset the workspace's property tests use: range and
//! [`Just`] strategies, tuples, `prop_oneof!`, `prop_filter_map`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` / `prop_assume!` macros. No shrinking is performed —
//! a failing case prints its generated value and the RNG is fixed-seeded,
//! so failures reproduce exactly from the test name alone.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator; the same (seed, case) pair always
/// produces the same inputs, so CI failures replay locally.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(case: u64) -> TestRng {
        TestRng {
            // Fixed base seed; splitmix the case index in.
            state: 0x9E37_79B9_7F4A_7C15u64.wrapping_add(case.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                | 1,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of test inputs. Unlike real proptest there is no value
/// tree: rejected draws return `None` and the harness retries.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one value; `None` means the draw was rejected (filtered).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;
}

/// Combinator methods for strategies (separate from [`Strategy`] so the
/// base trait stays object-safe for [`Union`]).
pub trait StrategyExt: Strategy + Sized {
    /// Maps draws through `f`, rejecting those for which `f` returns
    /// `None`. The `reason` matches real proptest's diagnostic argument.
    fn prop_filter_map<R, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Value) -> Option<R>,
    {
        FilterMap {
            base: self,
            f,
            _reason: reason,
        }
    }

    /// Maps draws through an infallible `f`.
    fn prop_map<R, F>(self, f: F) -> PropMap<Self, F>
    where
        F: Fn(Self::Value) -> R,
    {
        PropMap { base: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                if hi < lo {
                    return None;
                }
                Some((lo + rng.below(hi - lo + 1)) as $t)
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.end <= self.start {
                    return None;
                }
                let lo = self.start as u64;
                let hi = self.end as u64;
                Some((lo + rng.below(hi - lo)) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Creates a union over the given options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Strategy adapter produced by [`StrategyExt::prop_filter_map`].
#[derive(Debug)]
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    _reason: &'static str,
}

impl<S, R, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<R>,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> Option<R> {
        (self.f)(self.base.generate(rng)?)
    }
}

/// Strategy adapter produced by [`StrategyExt::prop_map`].
#[derive(Debug)]
pub struct PropMap<S, F> {
    base: S,
    f: F,
}

impl<S, R, F> Strategy for PropMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> Option<R> {
        Some((self.f)(self.base.generate(rng)?))
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Harness behind the `proptest!` macro: draws inputs from `strategy`
/// until `cases` accepted cases ran, panicking on the first failure.
pub fn run_proptest<S, F>(config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    S::Value: Debug + Clone,
    F: Fn(S::Value) -> Result<(), String>,
{
    let mut accepted = 0u32;
    let mut draws = 0u64;
    let max_draws = u64::from(config.cases) * 50 + 1000;
    while accepted < config.cases {
        draws += 1;
        assert!(
            draws <= max_draws,
            "proptest shim: strategy rejected too many draws ({draws}); \
             property accepted only {accepted}/{} cases",
            config.cases
        );
        let mut rng = TestRng::new(draws);
        let Some(input) = strategy.generate(&mut rng) else {
            continue;
        };
        accepted += 1;
        let shown = format!("{input:?}");
        if let Err(msg) = test(input) {
            panic!(
                "proptest case #{accepted} failed: {msg}\n    input: {shown}\n    \
                 (deterministic seed: draw {draws})"
            );
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, StrategyExt,
    };
}

/// Uniformly chooses among the listed strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        // Push into one vector so the element type (and thereby every
        // option's literal types) unify through inference.
        #[allow(clippy::vec_init_then_push)]
        let options = {
            let mut options: Vec<Box<dyn $crate::Strategy<Value = _>>> = Vec::new();
            $(options.push(Box::new($strategy));)+
            options
        };
        $crate::Union::new(options)
    }};
}

/// Asserts inside a property; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("assertion failed: {a:?} != {b:?}"));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!("assertion failed: {a:?} == {b:?}"));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Declares property tests; each `fn name(pat in strategy) { .. }` becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($arg:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_proptest(&config, $strategy, |input| {
                    let $arg = input;
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($arg:pat in $strategy:expr) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($arg in $strategy) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..=9).generate(&mut rng).unwrap();
            assert!((3..=9).contains(&v));
            let w = (5u64..8).generate(&mut rng).unwrap();
            assert!((5..8).contains(&w));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(pair in (1u32..=4, 10u32..=20).prop_filter_map(
            "sum must be even",
            |(a, b)| if (a + b) % 2 == 0 { Some((a, b)) } else { None },
        )) {
            let (a, b) = pair;
            prop_assume!(a > 0);
            prop_assert!((a + b) % 2 == 0, "odd sum {a}+{b}");
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b);
        }

        #[test]
        fn oneof_picks_listed_values(v in prop_oneof![Just(1u32), Just(3), Just(5)]) {
            prop_assert!([1, 3, 5].contains(&v));
        }
    }
}
