//! Derive macros for the in-tree `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two item shapes this workspace uses:
//!
//! * **named-field structs** — (de)serialized as a JSON object keyed by
//!   field name; the field attribute `#[serde(default = "path")]` supplies
//!   a fallback for missing keys, matching real serde's behavior;
//! * **unit-variant enums** — (de)serialized as the variant-name string.
//!
//! Parsing is done directly over `proc_macro::TokenStream` (no `syn`):
//! attributes and visibility are skipped, generics are rejected with a
//! clear panic (none of the workspace types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name plus optional `#[serde(default = "...")]` path.
struct Field {
    name: String,
    default_path: Option<String>,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Extracts a `default = "path"` setting from a `#[serde(...)]` attribute
/// body, if present.
fn serde_default_from_attr(tokens: &[TokenTree]) -> Option<String> {
    // Attribute group contents look like: serde ( default = "path" )
    let mut iter = tokens.iter();
    match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let parts: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < parts.len() {
        if let TokenTree::Ident(id) = &parts[i] {
            if id.to_string() == "default" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (parts.get(i + 1), parts.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Parses the derive input into an [`Item`]. Panics (compile error) on
/// unsupported shapes so misuse is loud rather than silently wrong.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim does not support generic types (on `{name}`)");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            panic!("serde derive shim supports only brace-bodied items; `{name}` has {other:?}")
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

fn parse_fields(body: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Gather this field's attributes.
        let mut default_path = None;
        loop {
            match body.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = body.get(i + 1) {
                        let attr: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(path) = serde_default_from_attr(&attr) {
                            default_path = Some(path);
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = body.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field_name)) = body.get(i) else {
            break; // trailing comma / end of fields
        };
        let name = field_name.to_string();
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume tokens until a top-level comma. Angle
        // brackets do not nest as groups, so track their depth manually.
        let mut angle_depth = 0i32;
        while let Some(tt) = body.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default_path });
    }
    fields
}

fn parse_variants(body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let v = id.to_string();
                i += 1;
                if let Some(TokenTree::Group(_)) = body.get(i) {
                    panic!("serde derive shim supports only unit enum variants (`{v}` has data)");
                }
                if let Some(TokenTree::Punct(p)) = body.get(i) {
                    if p.as_char() == '=' {
                        panic!("serde derive shim does not support discriminants (`{v}`)");
                    }
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
                variants.push(v);
            }
            _ => i += 1,
        }
    }
    variants
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    match &f.default_path {
                        Some(path) => format!(
                            "{n}: match v.get(\"{n}\") {{\n\
                                 Some(fv) => serde::Deserialize::from_value(fv)?,\n\
                                 None => {path}(),\n\
                             }},"
                        ),
                        None => format!(
                            "{n}: serde::Deserialize::from_value(v.get(\"{n}\")\n\
                                 .ok_or_else(|| serde::DeError(\n\
                                     format!(\"missing field `{n}` in {name}\")))?)?,"
                        ),
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         if !matches!(v, serde::Value::Map(_)) {{\n\
                             return Err(serde::DeError::expected(\"object ({name})\", v));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::DeError(\n\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(serde::DeError::expected(\"string ({name})\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}
