//! In-tree stand-in for `criterion` (offline build): a wall-clock
//! micro-benchmark harness exposing the subset of the criterion 0.5 API
//! this workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement strategy: each benchmark is warmed up briefly, then timed
//! over `sample_size` samples (each sample runs enough iterations to be
//! clock-resolvable); the mean, minimum, and maximum per-iteration times
//! are printed. No statistics files are written and no plots are drawn —
//! the goal is honest comparative numbers in CI logs, not criterion's
//! full analysis pipeline.

use std::time::{Duration, Instant};

/// Per-sample throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless of the hint, which keeps timing honest
/// for the workspace's coarse-grained benches.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver; collects configuration and runs registered benches.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(150),
            measurement: Duration::from_millis(800),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Restricts runs to benchmark ids containing `filter` (set from the
    /// command line by [`criterion_main!`]).
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: Mode::WarmUp,
            budget: self.warm_up,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.mode = Mode::Measure;
        b.budget = self.measurement;
        b.samples.clear();
        f(&mut b);
        b.report(id, throughput);
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(&full, self.throughput, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (drop would do; provided for API parity).
    pub fn finish(self) {}
}

#[derive(Debug, PartialEq)]
enum Mode {
    WarmUp,
    Measure,
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    sample_size: usize,
    samples: Vec<f64>, // seconds per iteration
}

impl Bencher {
    /// Times `routine` (the criterion `iter` contract: the closure's
    /// return value is dropped and acts as a black box).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit one clock-resolvable burst?
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < Duration::from_millis(1) {
            std::hint::black_box(routine());
            iters += 1;
        }
        if self.mode == Mode::WarmUp {
            let warm_until = Instant::now() + self.budget.saturating_sub(start.elapsed());
            while Instant::now() < warm_until {
                std::hint::black_box(routine());
            }
            return;
        }
        let per_sample = iters.max(1);
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::WarmUp {
            let until = Instant::now() + self.budget;
            while Instant::now() < until {
                let input = setup();
                std::hint::black_box(routine(input));
            }
            return;
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<48} no samples collected");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = self.samples.iter().cloned().fold(f64::MIN, f64::max);
        let extra = match throughput {
            Some(Throughput::Elements(e)) => {
                format!("  {:>12.3} Melem/s", e as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(b)) => {
                format!("  {:>12.3} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{id:<48} time: [{} {} {}]{extra}",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Re-export point used by generated benchmark mains.
pub mod __private {
    /// Builds the `Criterion` a bench main starts from: default config
    /// plus any `--filter`-style positional argument from `cargo bench`.
    pub fn criterion_from_args(default: crate::Criterion) -> crate::Criterion {
        // cargo bench passes `--bench` and harness flags; treat the first
        // non-flag argument as a substring filter, like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        match filter {
            Some(f) => default.with_filter(f),
            None => default,
        }
    }
}

/// Declares a benchmark group. Both criterion forms are accepted:
/// `criterion_group!(benches, f, g)` and
/// `criterion_group!(name = benches; config = ...; targets = f, g)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::__private::criterion_from_args($config);
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        // Runs without panicking and prints a line.
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.bench_function("grouped", |b| {
            b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains('s'));
    }
}
