//! In-tree stand-in for `serde_json` (offline build): renders and parses
//! JSON through the `serde` shim's [`serde::Value`] tree.
//!
//! Covers the workspace's usage: [`to_string`], [`to_string_pretty`], and
//! [`from_str`]. Numbers round-trip exactly — integers are emitted
//! without a decimal point, floats via Rust's shortest-round-trip
//! `Display`, and the parser classifies tokens back into the same
//! variants.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indentation).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the float/integer distinction through a round trip.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, out, indent, depth)?,
        Value::Map(entries) => write_map(entries, out, indent, depth)?,
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_seq(
    items: &[Value],
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    if items.is_empty() {
        out.push_str("[]");
        return Ok(());
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(item, out, indent, depth + 1)?;
    }
    newline_indent(out, indent, depth);
    out.push(']');
    Ok(())
}

fn write_map(
    entries: &[(String, Value)],
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    if entries.is_empty() {
        out.push_str("{}");
        return Ok(());
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(v, out, indent, depth + 1)?;
    }
    newline_indent(out, indent, depth);
    out.push('}');
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(Error("lone surrogate".into()));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error("lone surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits following `\u` (cursor on the `u`).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end - 1; // leave cursor on the last hex digit
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        let tricky = 0.1f64 + 0.2; // not representable exactly
        assert_eq!(
            from_str::<f64>(&to_string(&tricky).unwrap()).unwrap(),
            tricky
        );
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nquote\"backslash\\tab\tend".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(from_str::<Vec<u64>>(&to_string(&v).unwrap()).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }
}
