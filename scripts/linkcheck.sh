#!/usr/bin/env bash
# Documentation link check: fails if README.md or docs/*.md reference a
# repository file that does not exist, or a `delta` subcommand the CLI
# does not dispatch. Pure grep/sed — no dependencies beyond coreutils —
# so it runs anywhere CI does. Usage: scripts/linkcheck.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
docs=(README.md docs/*.md)

# ---- 1. Markdown link targets: [text](path) ------------------------------
# External URLs and pure anchors are skipped; everything else must exist,
# either repo-relative or relative to the document's own directory.
for doc in "${docs[@]}"; do
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$path" ] && [ ! -e "$(dirname "$doc")/$path" ]; then
      echo "linkcheck: $doc links to missing file: $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//')
done

# ---- 2. Backticked repository paths ---------------------------------------
# Any `path/with/slashes.ext` mention of a source/config file must exist.
# Skipped: globs and placeholders (*, <, {, …), generated or scratch
# locations (results/, target/, absolute paths), and slash-less names.
for doc in "${docs[@]}"; do
  while IFS= read -r path; do
    case "$path" in
      *'*'* | *'<'* | *'{'* | *'…'*) continue ;;
      results/* | target/* | /*) continue ;;
      */*) ;;
      *) continue ;;
    esac
    if [ ! -e "$path" ]; then
      echo "linkcheck: $doc references missing file: $path"
      fail=1
    fi
  done < <(grep -oE '`[^` ]+\.(rs|md|json|toml|yml|yaml|sh|csv)`' "$doc" | tr -d '\`')
done

# ---- 3. `delta <subcommand>` mentions -------------------------------------
# The valid set is extracted from the CLI's own dispatch match in
# crates/cli/src/main.rs (plus `help`, handled before dispatch), so the
# check tracks the binary instead of a hand-maintained list.
valid=$(sed -n '/^fn run(positional/,/^}$/p' crates/cli/src/main.rs \
  | grep -oE 'Some\("[a-z-]+"\)' | sed 's/Some("//; s/")//')
valid="$valid help"
for doc in "${docs[@]}"; do
  while IFS= read -r word; do
    ok=0
    for v in $valid; do
      [ "$word" = "$v" ] && ok=1 && break
    done
    if [ "$ok" = 0 ]; then
      echo "linkcheck: $doc mentions unknown delta subcommand: delta $word"
      fail=1
    fi
  done < <(grep -oE '\bdelta [a-z-]+' "$doc" | sed 's/^delta //; s/-$//' | sort -u)
done

if [ "$fail" != 0 ]; then
  echo "linkcheck: FAILED"
  exit 1
fi
echo "linkcheck: OK (${#docs[@]} documents)"
