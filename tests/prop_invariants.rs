//! Property-based tests (proptest) over randomly drawn convolution
//! configurations: model invariants that must hold for *every* valid
//! layer, and simulator conservation laws on small instances.

use delta_model::tiling::LayerTiling;
use delta_model::traffic::{self, l1::MliMode};
use delta_model::{ConvLayer, Delta, GpuSpec};
use delta_sim::sched::ColumnScheduler;
use delta_sim::{ShardAxis, ShardPlan, SimConfig, Simulator};
use proptest::prelude::*;

/// A random but valid conv layer within model-scale bounds.
fn arb_layer() -> impl Strategy<Value = ConvLayer> {
    (
        1u32..=8,   // batch
        1u32..=256, // ci
        3u32..=64,  // hw
        1u32..=256, // co
        prop_oneof![Just(1u32), Just(3), Just(5), Just(7), Just(11)],
        1u32..=4, // stride
        0u32..=3, // pad
    )
        .prop_filter_map(
            "filter must fit padded input",
            |(b, ci, hw, co, f, s, p)| {
                ConvLayer::builder("prop")
                    .batch(b)
                    .input(ci, hw, hw)
                    .output_channels(co)
                    .filter(f, f)
                    .stride(s)
                    .pad(p)
                    .build()
                    .ok()
            },
        )
}

/// A *small* random layer the full trace simulation can afford.
fn arb_small_layer() -> impl Strategy<Value = ConvLayer> {
    (
        1u32..=2,
        1u32..=16,
        4u32..=16,
        1u32..=48,
        prop_oneof![Just(1u32), Just(3), Just(5)],
        1u32..=2,
        0u32..=2,
    )
        .prop_filter_map(
            "filter must fit padded input",
            |(b, ci, hw, co, f, s, p)| {
                ConvLayer::builder("prop-small")
                    .batch(b)
                    .input(ci, hw, hw)
                    .output_channels(co)
                    .filter(f, f)
                    .stride(s)
                    .pad(p)
                    .build()
                    .ok()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mli_is_at_least_one(layer in arb_layer()) {
        for req in [32u32, 128] {
            prop_assert!(traffic::l1::mli_ifmap(&layer, req) >= 1.0);
        }
    }

    #[test]
    fn traffic_estimates_are_positive_and_finite(layer in arb_layer()) {
        let gpu = GpuSpec::titan_xp();
        let t = traffic::estimate(&layer, &LayerTiling::new(&layer), &gpu, MliMode::PaperProfiled);
        for v in [t.l1_bytes, t.l2_bytes, t.dram_bytes] {
            prop_assert!(v.is_finite() && v > 0.0, "{t:?}");
        }
        // The model's implied miss rates are probabilities.
        prop_assert!(t.l1_miss_rate() <= 1.0 + 1e-9);
        prop_assert!(t.l2_miss_rate() <= 1.0 + 1e-9);
    }

    #[test]
    fn model_l1_at_least_l2(layer in arb_layer()) {
        // Distance-based L2 estimation can marginally exceed the
        // request-based L1 volume on degenerate sub-tile layers (the
        // Eq. 8 sample-boundary correction over-counts); allow 20%.
        let gpu = GpuSpec::titan_xp();
        let t = traffic::estimate(&layer, &LayerTiling::new(&layer), &gpu, MliMode::PaperProfiled);
        prop_assert!(t.l1_bytes >= t.l2_bytes * 0.8,
            "L1 {} < L2 {} for {layer}", t.l1_bytes, t.l2_bytes);
    }

    #[test]
    fn perf_estimate_is_positive_and_bottleneck_consistent(layer in arb_layer()) {
        let delta = Delta::new(GpuSpec::titan_xp());
        let p = delta.estimate_performance(&layer).unwrap();
        prop_assert!(p.cycles > 0.0 && p.cycles.is_finite());
        prop_assert!(p.seconds > 0.0);
        let max = p.t_mac_sm.max(p.t_lat_sm).max(p.t_bw_sm);
        prop_assert!((p.cycles - max).abs() < 1e-6 * max);
    }

    #[test]
    fn doubling_batch_scales_compute_linearly(layer in arb_layer()) {
        prop_assume!(layer.batch() <= 4);
        let doubled = layer.with_batch(layer.batch() * 2).unwrap();
        prop_assert_eq!(doubled.macs(), 2 * layer.macs());
        // GEMM K and N are batch-invariant.
        prop_assert_eq!(doubled.gemm_k(), layer.gemm_k());
        prop_assert_eq!(doubled.gemm_n(), layer.gemm_n());
    }

    #[test]
    fn tile_selection_is_total_and_covers_gemm(layer in arb_layer()) {
        let t = LayerTiling::new(&layer);
        prop_assert!(t.num_ctas() >= 1);
        prop_assert!(t.main_loops() >= 1);
        prop_assert!(t.num_ctas() * u64::from(t.tile().blk_m()) * u64::from(t.tile().blk_n())
            >= layer.gemm_m() * layer.gemm_n());
        prop_assert!(t.main_loops() * u64::from(t.tile().blk_k()) >= layer.gemm_k());
    }

    #[test]
    fn faster_gpu_never_predicts_slower(layer in arb_layer()) {
        let base = GpuSpec::titan_xp();
        let boosted = base
            .to_builder()
            .mac_gflops(base.mac_gflops() * 2.0)
            .l2_bw_gbps(base.l2_bw_gbps() * 2.0)
            .dram_bw_gbps(base.dram_bw_gbps() * 2.0)
            .l1_bw_gbps_per_sm(base.l1_bw_gbps_per_sm() * 2.0)
            .smem_ld_bytes_per_clk(base.smem_ld_bytes_per_clk() * 2.0)
            .smem_st_bytes_per_clk(base.smem_st_bytes_per_clk() * 2.0)
            .build()
            .unwrap();
        let t_base = Delta::new(base).estimate_performance(&layer).unwrap().cycles;
        let t_fast = Delta::new(boosted).estimate_performance(&layer).unwrap().cycles;
        prop_assert!(t_fast <= t_base * 1.0001, "{t_fast} > {t_base}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_conservation_laws(layer in arb_small_layer()) {
        let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
        let m = sim.run(&layer);
        // Funnel invariant.
        prop_assert!(m.l1_bytes >= m.l2_bytes);
        prop_assert!(m.l2_bytes >= m.dram_read_bytes);
        // Compulsory floor: every distinct useful byte must come from
        // DRAM at least once (sector granularity can only add).
        let touched = delta_sim::tensor::TensorMap::new(&layer);
        prop_assert!(m.dram_read_bytes as u64 + 4096 >= layer.filter_bytes(),
            "filter bytes unread: {} < {} ({})", m.dram_read_bytes, layer.filter_bytes(), touched.end());
        // Determinism.
        let again = sim.run(&layer);
        prop_assert_eq!(m, again);
    }

    #[test]
    fn simulator_miss_rates_are_probabilities(layer in arb_small_layer()) {
        let m = Simulator::new(GpuSpec::v100(), SimConfig::default()).run(&layer);
        prop_assert!((0.0..=1.0).contains(&m.l1_miss_rate));
        prop_assert!((0.0..=1.0).contains(&m.l2_miss_rate));
        prop_assert!(m.cycles.is_finite() && m.cycles > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The gradient bucketizer is an ordered, disjoint, exhaustive
    /// partition of the per-layer |∇W| byte list — for arbitrary layer
    /// mixes (three random conv shapes, each repeated 0..=5 times) and
    /// bucket sizes from 0 (one bucket per gradient) through 1 TiB
    /// (larger than any model, collapsing to a single bucket).
    #[test]
    fn bucketizer_partitions_wgrad_bytes_exactly(
        (a, b, c, na, nb, nc, bucket_pow) in
            (arb_layer(), arb_layer(), arb_layer(),
             0u32..=5, 0u32..=5, 0u32..=5, 0u32..=40)
    ) {
        // The gradient list a data-parallel step would all-reduce, in
        // backward (ready) order: each layer contributes its filter
        // footprint.
        let mut grads: Vec<u64> = Vec::new();
        for (layer, n) in [(&a, na), (&b, nb), (&c, nc)] {
            grads.extend(std::iter::repeat_n(layer.filter_bytes(), n as usize));
        }
        let bucket_bytes = match bucket_pow {
            0 => 0,
            p => 1u64 << p, // 2 B ..= 1 TiB
        };
        let buckets = delta_sim::bucketize(&grads, bucket_bytes);
        // Ordered + disjoint + exhaustive: concatenating the buckets'
        // items re-yields 0..len exactly.
        let flat: Vec<usize> = buckets.iter().flat_map(|bk| bk.items.iter().copied()).collect();
        prop_assert_eq!(flat, (0..grads.len()).collect::<Vec<_>>());
        // Byte conservation, per bucket and in total; no empty buckets.
        for bk in &buckets {
            prop_assert!(!bk.items.is_empty());
            let sum: u64 = bk.items.iter().map(|&i| grads[i]).sum();
            prop_assert_eq!(bk.bytes, sum);
        }
        let total: u64 = buckets.iter().map(|bk| bk.bytes).sum();
        prop_assert_eq!(total, grads.iter().sum::<u64>());
        // Greedy closure: every bucket but the last reaches the
        // threshold (the tail may stay short).
        for bk in buckets.iter().rev().skip(1) {
            prop_assert!(bk.bytes >= bucket_bytes);
        }
        // A bucket larger than the whole model yields a single bucket.
        if !grads.is_empty() && bucket_bytes > total {
            prop_assert_eq!(buckets.len(), 1);
        }
    }

    /// Shard partitions are a disjoint, exhaustive cover of the
    /// scheduler's batch list: replaying every batch of every
    /// shard-owned column visits exactly the CTA list the unsharded
    /// schedule visits, in the same order — for arbitrary CTA grids,
    /// occupancies, and worker counts, including `n_workers` far above
    /// the number of columns (surplus shards are empty, never wrong).
    #[test]
    fn shard_plan_covers_the_batch_list_exactly_once(
        (rows, co, active, workers) in (1u32..=64, 1u32..=512, 1u32..=3, 1u32..=40)
    ) {
        // A 1x1 conv over 8x16 features makes the CTA grid exactly
        // `rows` tall (M = rows x 128) and `ceil(co/blkN)` wide.
        let layer = ConvLayer::builder("shard-prop")
            .batch(rows)
            .input(8, 8, 16)
            .output_channels(co)
            .filter(1, 1)
            .build()
            .unwrap();
        let tiling = LayerTiling::new(&layer);
        let sched = ColumnScheduler::new(&tiling, &GpuSpec::titan_xp(), active);
        let plan = ShardPlan::partition(sched.columns(), workers);
        prop_assert_eq!(plan.n_workers(), workers as usize);

        let enumerate = |cols: &mut dyn Iterator<Item = u64>| -> Vec<(u64, u64, u32)> {
            let mut out = Vec::new();
            for col in cols {
                for b in 0..sched.batches_per_column() {
                    for cta in sched.batch(col, b) {
                        out.push((cta.col, cta.row, cta.sm));
                    }
                }
            }
            out
        };
        let sharded = enumerate(&mut plan.shards().iter().flat_map(|r| r.clone()));
        let unsharded = enumerate(&mut (0..sched.columns()));
        prop_assert_eq!(sharded.len() as u64, sched.total_ctas());
        prop_assert_eq!(sharded, unsharded);
        // Every column has exactly one owning shard.
        for col in 0..sched.columns() {
            let owner = plan.shard_of(col);
            prop_assert!(plan.shards()[owner].contains(&col));
        }
    }

    /// The auto-selected plan is a disjoint, exhaustive, column-major
    /// cover of the (column, batch) unit grid: concatenating every
    /// shard's segments re-yields each column's simulated batch range
    /// in order — for arbitrary grid shapes and worker counts,
    /// including workers far above the unit count (surplus shards are
    /// empty, never wrong). The axis choice keeps the historical column
    /// partition exactly while it feeds every worker, and busy workers
    /// saturate at the axis's unit count.
    #[test]
    fn row_plan_covers_the_unit_grid_exactly_once(
        (columns, batches, workers) in (1u64..=24, 1u64..=24, 1u32..=64)
    ) {
        let plan = ShardPlan::auto(columns, batches, workers);
        match plan.axis() {
            ShardAxis::Columns => prop_assert!(u64::from(workers) <= columns),
            ShardAxis::Rows => prop_assert!(u64::from(workers) > columns),
        }
        // Flatten every shard's segments back to column-major units
        // (the plan's own batch count is 1 under the column axis, where
        // the unit is the whole column).
        let mut units = Vec::new();
        for s in 0..plan.n_workers() {
            for seg in plan.shard_segments(s) {
                prop_assert!(!seg.batches.is_empty(), "empty segment emitted");
                prop_assert!(seg.batches.end <= plan.batches());
                prop_assert!(seg.col < columns);
                for b in seg.batches.clone() {
                    units.push(seg.col * plan.batches() + b);
                }
            }
        }
        let expected: Vec<u64> = (0..columns * plan.batches()).collect();
        prop_assert_eq!(units, expected);
        let unit_count = match plan.axis() {
            ShardAxis::Columns => columns,
            ShardAxis::Rows => columns * batches,
        };
        let busy = (0..plan.n_workers())
            .filter(|&s| !plan.shard_segments(s).is_empty())
            .count() as u64;
        prop_assert_eq!(busy, u64::from(workers).min(unit_count));
    }
}

// ---------------------------------------------------------------------
// Query-fingerprint invariants (the evaluation API's cache contract)
// ---------------------------------------------------------------------

/// A random layer across every [`delta_model::LayerKind`]: the conv
/// layers above, plus GEMM and attention workloads whose fingerprints
/// must separate from conv layers with identical embedded dimensions.
fn arb_kinded_layer() -> impl Strategy<Value = ConvLayer> {
    prop_oneof![
        arb_layer(),
        (1u32..=4096, 1u32..=4096, 1u32..=4096).prop_map(|(m, n, k)| {
            ConvLayer::gemm("prop-gemm", m, n, k).expect("positive dims build")
        }),
        (1u32..=8, 1u32..=256, 1u32..=16, 1u32..=128).prop_map(|(b, seq, heads, dh)| {
            ConvLayer::attention("prop-attn", b, seq, heads, dh).expect("small dims build")
        }),
    ]
}

/// A random execution configuration spanning every query axis: pass,
/// shard workers, device count, device spec, interconnect, topology.
fn arb_parallelism() -> impl Strategy<Value = delta_model::Parallelism> {
    use delta_model::{GpuSpec, InterconnectKind, Parallelism, TopologyKind};
    let gpu = prop_oneof![
        Just(GpuSpec::titan_xp()),
        Just(GpuSpec::p100()),
        Just(GpuSpec::v100()),
        Just(GpuSpec::v100_tensor()),
        Just(GpuSpec::a100()),
    ];
    let interconnect = prop_oneof![
        Just(InterconnectKind::Ideal),
        Just(InterconnectKind::NvLink),
        Just(InterconnectKind::Pcie),
    ];
    let topology = prop_oneof![
        Just(None),
        Just(Some(TopologyKind::Ring)),
        Just(Some(TopologyKind::Switch)),
        Just(Some(TopologyKind::Mesh)),
        Just(Some(TopologyKind::Hierarchical)),
    ];
    prop_oneof![
        Just(Parallelism::Single),
        (1u32..=64).prop_map(|workers| Parallelism::Sharded { workers }),
        (1u32..=8, gpu, interconnect, topology).prop_map(|(g, gpu, ic, topo)| {
            Parallelism::Multi {
                devices: vec![gpu; g as usize],
                interconnect: ic,
                topology: topo,
            }
        }),
    ]
}

fn arb_pass() -> impl Strategy<Value = delta_model::Pass> {
    use delta_model::Pass;
    prop_oneof![Just(Pass::Fwd), Just(Pass::Dgrad), Just(Pass::Wgrad)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_fingerprints_are_injective_and_equal_queries_hit_the_cache(
        (layer_a, layer_b, pass_a, pass_b, par_a, par_b) in (
            arb_kinded_layer(), arb_kinded_layer(), arb_pass(), arb_pass(),
            arb_parallelism(), arb_parallelism(),
        )
    ) {
        use delta_model::{Engine, EvalQuery};
        let a = EvalQuery::new(&layer_a, pass_a, par_a);
        let b = EvalQuery::new(&layer_b, pass_b, par_b);
        // Injective: fingerprints collide iff the queries are equal —
        // across shape, pass, worker count, device list (count AND
        // spec), interconnect, and topology.
        prop_assert_eq!(a == b, a.fingerprint() == b.fingerprint());
        // The fingerprint is a pure function of the query.
        prop_assert_eq!(a.fingerprint(), a.clone().fingerprint());

        // Equal queries always hit: evaluating the same query twice runs
        // the backend once (the model backend answers any parallelism).
        // Queries whose pass workload cannot be constructed (dgrad of a
        // pad >= filter layer) error both times and are never cached.
        let engine = Engine::new(Delta::new(GpuSpec::titan_xp()));
        match engine.evaluate(&a) {
            Ok(first) => {
                let second = engine.evaluate(&a.clone()).unwrap();
                prop_assert_eq!(first, second);
                prop_assert_eq!(engine.cache_stats().misses, 1);
                prop_assert_eq!(engine.cache_stats().hits, 1);
            }
            Err(_) => {
                prop_assert!(engine.evaluate(&a.clone()).is_err());
                prop_assert_eq!(engine.cache_stats().hits, 0);
            }
        }
    }

    #[test]
    fn layer_kind_separates_fingerprints_of_equal_embeddings(
        (m, n, k, pass, par) in (
            1u32..=1024, 1u32..=1024, 1u32..=1024, arb_pass(), arb_parallelism(),
        )
    ) {
        use delta_model::EvalQuery;
        // A GEMM and the FC conv embedding it lowers to share every
        // geometric field; only `kind` separates them — so the cache
        // can never serve a tensor-core result for an FFMA query.
        let gemm = ConvLayer::gemm("prop", m, n, k).unwrap();
        let fc = ConvLayer::fully_connected("prop", m, k, n).unwrap();
        prop_assert_eq!(gemm.macs(), fc.macs());
        let a = EvalQuery::new(&gemm, pass, par.clone());
        let b = EvalQuery::new(&fc, pass, par);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn step_fingerprints_separate_schedule_knobs(
        (layer, par, bucket_a, bucket_b, overlap_a, overlap_b) in (
            arb_layer(), arb_parallelism(), 1u32..=1024, 1u32..=1024,
            prop_oneof![Just(false), Just(true)],
            prop_oneof![Just(false), Just(true)],
        )
    ) {
        use delta_model::StepQuery;
        let net = [layer.clone(), layer];
        let mk = |bucket_mb: u32, overlap: bool| StepQuery {
            layers: net.to_vec(),
            parallelism: par.clone(),
            bucket_mb,
            overlap,
        };
        let a = mk(bucket_a, overlap_a);
        let b = mk(bucket_b, overlap_b);
        let equal = bucket_a == bucket_b && overlap_a == overlap_b;
        prop_assert_eq!(equal, a.fingerprint() == b.fingerprint());
    }
}
