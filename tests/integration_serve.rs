//! Integration suite for `delta serve`: real sockets, real HTTP.
//!
//! Pins the wire contract end to end:
//!
//! * responses are **byte-identical** to a direct `Engine` evaluation of
//!   the same query;
//! * N concurrent duplicate `StepQuery`s cost **one** evaluation
//!   (single-flight dedup), observable via `GET /stats`;
//! * a warm restart from the persistent cache file answers with **zero
//!   layer replays** (the simulator's shared replay counter proves it);
//! * malformed input — invalid JSON, unknown fields, NaN bandwidths,
//!   mixed-fleet `Multi` queries — gets a structured 400 over the
//!   socket, never a dropped connection or a panic;
//! * `GET /metrics` serves the Prometheus exposition format with the
//!   engine cache counters, the backend replay counter, and per-endpoint
//!   request counts and latency histograms.

use delta_model::engine::Engine;
use delta_model::query::{EvalQuery, Parallelism, Pass, StepQuery};
use delta_model::{ConvLayer, Delta, GpuSpec, InterconnectKind, TopologyKind};
use delta_serve::{spawn, ServeConfig};
use delta_sim::{SimConfig, Simulator};
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// Sends one request and returns `(status, response headers, body)`.
fn request_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// Sends one request and returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _head, body) = request_full(addr, method, path, body);
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

/// An in-process server over the analytical model (instant answers).
fn model_server() -> delta_serve::ServerHandle {
    spawn(
        Delta::new(GpuSpec::titan_xp()),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind 127.0.0.1:0")
}

fn small_layer(label: &str) -> ConvLayer {
    ConvLayer::builder(label)
        .batch(2)
        .input(16, 8, 8)
        .output_channels(16)
        .filter(3, 3)
        .pad(1)
        .build()
        .expect("valid layer")
}

/// A cheap-but-real multi-GPU step query (the simulator replays each
/// unique shape once under it).
fn step_query() -> StepQuery {
    StepQuery {
        layers: vec![small_layer("conv1"), small_layer("conv2")],
        parallelism: Parallelism::Multi {
            devices: vec![GpuSpec::titan_xp(); 2],
            interconnect: InterconnectKind::NvLink,
            topology: Some(TopologyKind::Ring),
        },
        bucket_mb: 4,
        overlap: true,
    }
}

fn json<T: Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializable")
}

/// A scratch cache-file path unique to this test process.
fn scratch_cache(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "delta_serve_test_{}_{name}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn eval_round_trip_is_byte_identical_to_direct_engine() {
    let server = model_server();
    let query = EvalQuery::new(&small_layer("q"), Pass::Wgrad, Parallelism::Single);
    let (status, body) = post(server.addr(), "/eval", &json(&query));
    assert_eq!(status, 200, "{body}");

    let engine = Engine::new(Delta::new(GpuSpec::titan_xp()));
    let direct = json(&engine.evaluate(&query).expect("direct evaluation"));
    assert_eq!(body, direct, "socket bytes == direct Engine bytes");
    server.shutdown();
}

#[test]
fn step_round_trip_is_byte_identical_to_direct_engine() {
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let server = spawn(
        sim,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let query = step_query();
    let (status, body) = post(server.addr(), "/step", &json(&query));
    assert_eq!(status, 200, "{body}");

    let engine = Engine::new(Simulator::new(GpuSpec::titan_xp(), SimConfig::default()));
    let direct = json(&engine.evaluate_step(&query).expect("direct evaluation"));
    assert_eq!(body, direct, "socket bytes == direct Engine bytes");
    server.shutdown();
}

#[test]
fn concurrent_duplicate_steps_dedup_to_one_miss() {
    const N: usize = 6;
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let counter = sim.clone();
    let server = spawn(
        sim,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: N,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let body = json(&step_query());

    let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || post(addr, "/step", &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(body, &responses[0].1, "all duplicates byte-identical");
    }
    let direct_sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let direct_counter = direct_sim.clone();
    let direct_engine = Engine::new(direct_sim);
    let direct = json(&direct_engine.evaluate_step(&step_query()).unwrap());
    assert_eq!(responses[0].1, direct, "and identical to a direct Engine");

    // Single-flight is observable via /stats: N step requests, one body
    // cache miss (the leader), everyone else joined its flight or hit
    // the settled cache.
    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200, "{stats}");
    let stats: Value = serde_json::from_str(&stats).expect("stats is JSON");
    let count = |path: &[&str]| -> u64 {
        let mut v = &stats;
        for key in path {
            v = v.get(key).unwrap_or_else(|| panic!("stats has {path:?}"));
        }
        match v {
            Value::U64(n) => *n,
            other => panic!("{path:?} is not a count: {other:?}"),
        }
    };
    assert_eq!(count(&["requests", "step"]), N as u64);
    assert_eq!(
        count(&["cache", "misses"]),
        1,
        "one evaluation for {N} requests"
    );
    assert_eq!(
        count(&["cache", "hits"]) + count(&["cache", "deduped"]),
        (N - 1) as u64
    );
    // The engine beneath evaluated the step exactly once, and each
    // unique (shape, pass) replayed once — 2 layers × 3 passes here.
    assert_eq!(count(&["engine", "step_misses"]), 1);
    assert_eq!(count(&["engine", "step_hits"]), 0);
    assert_eq!(
        counter.replay_count(),
        direct_counter.replay_count(),
        "the served step cost exactly one engine evaluation's replays"
    );
    // The same replay count is visible on the wire (the counter /stats
    // used to omit).
    assert_eq!(count(&["engine", "replays"]), counter.replay_count());
    server.shutdown();
}

#[test]
fn warm_restart_from_cache_file_replays_nothing() {
    let cache = scratch_cache("warm_restart");
    let query = step_query();
    let config = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_file: Some(cache.clone()),
        ..ServeConfig::default()
    };

    // Cold server: evaluate once, persist on shutdown.
    let cold_sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let cold_counter = cold_sim.clone();
    let server = spawn(cold_sim, config()).expect("bind cold");
    let (status, cold_body) = post(server.addr(), "/step", &json(&query));
    assert_eq!(status, 200, "{cold_body}");
    assert!(cold_counter.replay_count() > 0, "cold run simulates");
    server.shutdown();
    assert!(cache.exists(), "shutdown saved the cache file");

    // Warm server: a fresh simulator (fresh replay counter) over the
    // saved cache answers the same query without simulating anything.
    let warm_sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let warm_counter = warm_sim.clone();
    let server = spawn(warm_sim, config()).expect("bind warm");
    let (status, warm_body) = post(server.addr(), "/step", &json(&query));
    assert_eq!(status, 200, "{warm_body}");
    assert_eq!(warm_body, cold_body, "warm restart is byte-identical");
    assert_eq!(warm_counter.replay_count(), 0, "zero layer replays");
    server.shutdown();
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn sweep_streams_ndjson_with_per_item_results_and_errors() {
    let server = model_server();
    let eval = EvalQuery::new(&small_layer("s"), Pass::Fwd, Parallelism::Single);
    let step = StepQuery::new(&[small_layer("s")], Parallelism::Single);
    let body = format!(
        "[{}, {}, {}, {{\"nonsense\": true}}]",
        json(&eval),
        json(&eval),
        json(&step)
    );
    let (status, response) = post(server.addr(), "/sweep", &body);
    assert_eq!(status, 200, "{response}");
    let mut lines: Vec<Value> = response
        .lines()
        .map(|l| serde_json::from_str(l).expect("each line is JSON"))
        .collect();
    assert_eq!(lines.len(), 4, "one line per element: {response}");
    lines.sort_by_key(|l| match l.get("index") {
        Some(Value::U64(i)) => *i,
        other => panic!("line without index: {other:?}"),
    });
    // Elements 0 and 1 are duplicates: identical result bytes, matching
    // the dedicated endpoint's bytes.
    let (_, direct) = post(server.addr(), "/eval", &json(&eval));
    let result_json = |line: &Value| json(line.get("result").expect("result line"));
    assert_eq!(result_json(&lines[0]), result_json(&lines[1]));
    assert_eq!(result_json(&lines[0]), direct);
    assert!(lines[2].get("result").is_some(), "step element evaluated");
    // Element 3 is garbage: a structured per-line error, not a dropped
    // stream.
    let err = lines[3].get("error").expect("error line");
    assert_eq!(err.get("status"), Some(&Value::U64(400)));
    server.shutdown();
}

#[test]
fn malformed_input_gets_structured_400s_over_the_socket() {
    // Simulator backend so fleet validation is reachable too.
    let server = spawn(
        Simulator::new(GpuSpec::titan_xp(), SimConfig::default()),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let expect_400 = |path: &str, body: &str, code: &str| {
        let (status, response) = post(addr, path, body);
        assert_eq!(status, 400, "{path} {body} -> {response}");
        let v: Value = serde_json::from_str(&response).expect("error body is JSON");
        let err = v.get("error").expect("error envelope");
        assert_eq!(
            err.get("code"),
            Some(&Value::Str(code.into())),
            "{path} {body} -> {response}"
        );
        assert_eq!(err.get("status"), Some(&Value::U64(400)));
        assert!(
            matches!(err.get("message"), Some(Value::Str(m)) if !m.is_empty()),
            "{response}"
        );
    };

    // Invalid JSON (and its NaN variant: JSON cannot carry NaN tokens).
    expect_400("/eval", "{\"shape\":", "invalid_json");
    expect_400("/eval", "", "invalid_json");

    // Unknown fields at any nesting level.
    let good = json(&EvalQuery::new(
        &small_layer("m"),
        Pass::Fwd,
        Parallelism::Single,
    ));
    let unknown_top = good.replacen("{", "{\"typo\":1,", 1);
    expect_400("/eval", &unknown_top, "unknown_field");

    // Missing fields are typed-deserialization errors.
    expect_400("/step", "{\"layers\": []}", "invalid_query");

    // A NaN bandwidth in a GpuSpec: NaN is not JSON, so the body is
    // rejected at the parser with a structured 400 — it cannot smuggle a
    // non-finite spec into the engine.
    let multi = json(&EvalQuery::new(
        &small_layer("m"),
        Pass::Fwd,
        Parallelism::multi(&GpuSpec::titan_xp(), 2, InterconnectKind::Ideal),
    ));
    let nan_spec = multi.replacen("\"dram_bw_gbps\":450.0", "\"dram_bw_gbps\":NaN", 1);
    assert_ne!(nan_spec, multi, "substitution hit the serialized field");
    expect_400("/eval", &nan_spec, "invalid_json");

    // A mixed fleet reaches the simulator and is rejected as a domain
    // error, mapped to a structured 400.
    let mixed = json(&EvalQuery::new(
        &small_layer("m"),
        Pass::Fwd,
        Parallelism::Multi {
            devices: vec![GpuSpec::titan_xp(), GpuSpec::v100()],
            interconnect: InterconnectKind::NvLink,
            topology: None,
        },
    ));
    expect_400("/eval", &mixed, "invalid_gpu");

    server.shutdown();
}

#[test]
fn routing_errors_are_structured_too() {
    let server = model_server();
    let addr = server.addr();
    let (status, body) = request(addr, "GET", "/eval", "");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("method_not_allowed"), "{body}");
    let (status, body) = request(addr, "POST", "/stats", "");
    assert_eq!(status, 405, "{body}");
    let (status, body) = request(addr, "GET", "/no-such-endpoint", "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("not_found"), "{body}");
    server.shutdown();
}

#[test]
fn stats_reports_uptime_and_in_flight() {
    let server = model_server();
    let (status, body) = request(server.addr(), "GET", "/stats", "");
    assert_eq!(status, 200, "{body}");
    let v: Value = serde_json::from_str(&body).expect("stats is JSON");
    assert!(
        matches!(v.get("uptime_seconds"), Some(Value::F64(s)) if *s >= 0.0),
        "{body}"
    );
    // The /stats request itself is in flight while the snapshot is
    // taken.
    assert!(
        matches!(v.get("in_flight"), Some(Value::U64(n)) if *n >= 1),
        "{body}"
    );
    server.shutdown();
}

#[test]
fn metrics_exposes_prometheus_text_with_cache_counters_and_latency() {
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let counter = sim.clone();
    let server = spawn(
        sim,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    // Drive one step evaluation so the counters move.
    let (status, body) = post(addr, "/step", &json(&step_query()));
    assert_eq!(status, 200, "{body}");

    let (status, head, text) = request_full(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{text}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "Prometheus exposition content type: {head}"
    );

    // The engine's cache counters, absorbed into the registry behind
    // the unchanged `CacheStats` accessors.
    for metric in [
        "delta_engine_cache_hits_total",
        "delta_engine_cache_misses_total",
        "delta_engine_step_cache_hits_total",
        "delta_engine_step_cache_misses_total",
    ] {
        assert!(text.contains(&format!("# TYPE {metric} counter")), "{text}");
        assert!(text.contains(&format!("\n{metric} ")), "{text}");
    }
    // The backend's replay counter rides along, appended at scrape
    // time, and agrees with the simulator's own count.
    assert!(
        text.contains(&format!(
            "\ndelta_engine_replays_total {}\n",
            counter.replay_count()
        )),
        "replay counter must match the simulator's: {text}"
    );
    assert!(counter.replay_count() > 0, "the step simulated something");

    // Request counters are labeled per endpoint (the one /step request
    // is counted before handling, so the count is exact).
    assert!(
        text.contains("delta_serve_requests_total{endpoint=\"step\"} 1"),
        "{text}"
    );
    // The latency histogram exposes cumulative log-spaced buckets:
    // every count nondecreasing toward +Inf.
    let step_bucket = "delta_serve_request_seconds_bucket{endpoint=\"step\",le=\"";
    let counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with(step_bucket))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!counts.is_empty(), "step latency buckets present: {text}");
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "cumulative bucket counts are monotone: {counts:?}"
    );
    assert!(
        text.contains("delta_serve_request_seconds_count{endpoint=\"step\"}"),
        "{text}"
    );

    // Wrong method gets the structured 405, like every other endpoint.
    let (status, body) = post(addr, "/metrics", "");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("method_not_allowed"), "{body}");
    server.shutdown();
}

#[test]
fn healthz_reports_the_backend_fingerprint() {
    // The identity triple must match what the engine's cache guard and
    // the fleet handshake would compute for the same backend.
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let want = delta_model::BackendFingerprint::of(&sim);
    let server = spawn(
        sim,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind 127.0.0.1:0");

    let (status, body) = request(server.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let v: Value = serde_json::from_str(&body).expect("healthz is JSON");
    let field = |k: &str| match v.get(k) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("healthz field {k} missing or not a string: {other:?} in {body}"),
    };
    assert_eq!(field("version"), env!("CARGO_PKG_VERSION"));
    assert_eq!(field("backend"), want.backend);
    assert_eq!(field("gpu"), want.gpu);
    assert_eq!(field("config_fingerprint"), want.config);
    // Build info: the on-disk cache format this server reads/writes.
    assert_eq!(
        v.get("cache_format_version"),
        Some(&Value::U64(u64::from(
            delta_model::engine::CACHE_FORMAT_VERSION
        ))),
        "{body}"
    );

    // Wrong method gets the structured 405, like every other endpoint.
    let (status, body) = request(server.addr(), "POST", "/healthz", "");
    assert_eq!(status, 405, "{body}");
    server.shutdown();
}
