//! Cross-crate integration of the topology-aware collective scheduler
//! through the query API: `Parallelism::Multi { interconnect, topology }`
//! and `StepQuery { bucket_mb, overlap }` through `Backend`, `Engine`,
//! and the persistent cache.
//!
//! Three acceptance contracts are pinned here (mirroring the CI perf
//! gate):
//!
//! 1. **legacy identity** — with the scalar interconnect presets (no
//!    topology) the multi-GPU evaluation is byte-identical, down to the
//!    serialized JSON, to the pre-scheduler output (a golden file
//!    captured before the topology subsystem landed) — now produced by
//!    the query API;
//! 2. **scheduling bounds** — for every topology × device count ×
//!    bucket size, the overlapped step satisfies
//!    `max(compute, comm) <= step <= serial`, with overlap off the step
//!    *is* the serial schedule bitwise, and the per-layer table is
//!    independent of the overlap flag (both views come from one set of
//!    replays);
//! 3. **cache hygiene** — entries computed under one
//!    interconnect/topology never serve a query under another (key
//!    inequality), and files from a different *sampling* configuration
//!    are refused.

use delta_model::engine::Engine;
use delta_model::query::{EvalQuery, Parallelism, StepQuery};
use delta_model::schedule::SpanKind;
use delta_model::{Backend, Delta, GpuSpec};
use delta_sim::{InterconnectKind, SimConfig, Simulator, TopologyKind};

fn sim() -> Simulator {
    Simulator::new(GpuSpec::titan_xp(), SimConfig::default())
}

/// A homogeneous Titan Xp fleet under the given fabric.
fn fleet(g: u32, interconnect: InterconnectKind, topology: Option<TopologyKind>) -> Parallelism {
    Parallelism::Multi {
        devices: vec![GpuSpec::titan_xp(); g as usize],
        interconnect,
        topology,
    }
}

fn step_query(
    layers: &[delta_model::ConvLayer],
    parallelism: Parallelism,
    bucket_mb: u32,
    overlap: bool,
) -> StepQuery {
    StepQuery {
        layers: layers.to_vec(),
        parallelism,
        bucket_mb,
        overlap,
    }
}

#[test]
fn legacy_scalar_presets_match_the_pre_scheduler_golden_bytes() {
    // The acceptance criterion behind `delta network alexnet --backend
    // sim --gpus 4 --batch 2 --json` with the default (nvlink) scalar
    // preset: the serialized evaluation must be byte-identical to the
    // output captured before the topology/overlap subsystem existed —
    // and now also to what the redesigned query API produces.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let eval = Engine::new(sim())
        .evaluate_network(net.layers(), &fleet(4, InterconnectKind::NvLink, None))
        .expect("simulable network");
    let json = serde_json::to_string_pretty(&eval).unwrap();
    let golden = include_str!("golden/net_alexnet_sim_gpus4_nvlink_b2.json");
    assert_eq!(json.trim_end(), golden.trim_end());
}

#[test]
fn topology_changes_pricing_but_never_the_merge() {
    // An explicit topology reprices link traffic and time; the on-device
    // measurement (the merge) must stay bitwise identical.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let legacy = Engine::new(sim())
        .evaluate_network(net.layers(), &fleet(4, InterconnectKind::NvLink, None))
        .unwrap();
    for kind in TopologyKind::ALL {
        let topo = Engine::new(sim())
            .evaluate_network(
                net.layers(),
                &fleet(4, InterconnectKind::NvLink, Some(kind)),
            )
            .unwrap();
        for (a, b) in legacy.rows.iter().zip(&topo.rows) {
            assert_eq!(a.estimate.l1_bytes, b.estimate.l1_bytes, "{kind}");
            assert_eq!(a.estimate.l2_bytes, b.estimate.l2_bytes, "{kind}");
            assert_eq!(
                a.estimate.dram_read_bytes, b.estimate.dram_read_bytes,
                "{kind}"
            );
            assert_eq!(
                a.estimate.dram_write_bytes, b.estimate.dram_write_bytes,
                "{kind}"
            );
        }
        // The derived multiplier actually bites: the switch star (2 hops
        // everywhere) moves more halo bytes than the scalar preset's
        // factor 1.0.
        if kind == TopologyKind::Switch {
            let link_legacy: f64 = legacy.rows.iter().map(|r| r.estimate.link_bytes).sum();
            let link_topo: f64 = topo.rows.iter().map(|r| r.estimate.link_bytes).sum();
            assert!(link_topo > link_legacy, "{link_topo} vs {link_legacy}");
        }
    }
    // Under ideal, every topology is the zero-cost identity.
    let ideal_plain = Engine::new(sim())
        .evaluate_network(net.layers(), &fleet(4, InterconnectKind::Ideal, None))
        .unwrap();
    for kind in TopologyKind::ALL {
        let ideal = Engine::new(sim())
            .evaluate_network(net.layers(), &fleet(4, InterconnectKind::Ideal, Some(kind)))
            .unwrap();
        assert_eq!(ideal.rows, ideal_plain.rows, "{kind}");
    }
}

#[test]
fn scheduled_step_satisfies_the_bounds_for_every_config() {
    let net = delta_networks::alexnet(2).expect("builtin network");
    let s = sim();
    let engine = Engine::new(s.clone());
    for kind in TopologyKind::ALL {
        for g in [1u32, 2, 4, 8] {
            for bucket_mb in [1u32, 25, 1024] {
                let par = fleet(g, InterconnectKind::NvLink, Some(kind));
                let overlapped = engine
                    .evaluate_step(&step_query(net.layers(), par.clone(), bucket_mb, true))
                    .unwrap();
                let t = &overlapped.timeline;
                assert!(
                    t.bounds_hold(),
                    "{kind} g={g} bucket={bucket_mb}: compute {}, comm {}, step {}, serial {}",
                    t.compute_seconds,
                    t.comm_seconds,
                    t.step_seconds,
                    t.serial_seconds
                );
                let serial = s
                    .evaluate_step(&step_query(net.layers(), par.clone(), bucket_mb, false))
                    .unwrap();
                // Overlap off: the step IS the serial schedule, bitwise.
                assert_eq!(serial.timeline.step_seconds, serial.timeline.serial_seconds);
                // The overlapped step never loses to the serial one.
                assert!(t.step_seconds <= serial.timeline.step_seconds);
                // The per-layer table is a function of the replays, not
                // of the schedule: flipping the overlap flag must not
                // move a single bit of it.
                assert_eq!(overlapped.table, serial.table, "{kind} g={g}");
                if g == 1 {
                    // One device exchanges nothing.
                    assert_eq!(t.comm_seconds, 0.0);
                    assert_eq!(t.step_seconds, t.compute_seconds);
                }
                // A repeated step at this cell is a warm step-cache hit:
                // bitwise identical, zero additional replays — across
                // the whole topology × G × bucket matrix.
                let replays = s.replay_count();
                let warm = engine
                    .evaluate_step(&step_query(net.layers(), par, bucket_mb, true))
                    .unwrap();
                assert_eq!(warm, overlapped, "{kind} g={g} bucket={bucket_mb}");
                assert_eq!(s.replay_count(), replays, "{kind} g={g} bucket={bucket_mb}");
            }
        }
    }
}

#[test]
fn smaller_buckets_hide_more_communication() {
    // One giant bucket cannot launch before the last gradient is ready,
    // so everything is exposed; fine buckets stream behind backward
    // compute. The hierarchical topology's slow uplink makes the effect
    // visible on a small network.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let s = sim();
    let schedule = |bucket_mb: u32| {
        s.evaluate_step(&step_query(
            net.layers(),
            fleet(
                8,
                InterconnectKind::NvLink,
                Some(TopologyKind::Hierarchical),
            ),
            bucket_mb,
            true,
        ))
        .unwrap()
        .timeline
    };
    let fine = schedule(1);
    let coarse = schedule(1024);
    assert_eq!(coarse.per_device[0].comm.len(), 1, "one giant bucket");
    assert!(fine.per_device[0].comm.len() > 1);
    assert!(
        fine.exposed_comm_seconds <= coarse.exposed_comm_seconds,
        "fine {} vs coarse {}",
        fine.exposed_comm_seconds,
        coarse.exposed_comm_seconds
    );
    assert!(fine.step_seconds <= coarse.step_seconds);
    // Both agree on the compute stream.
    assert_eq!(fine.compute_seconds, coarse.compute_seconds);
}

#[test]
fn engine_routes_the_step_and_model_falls_back_to_serial() {
    let net = delta_networks::alexnet(2).expect("builtin network");
    // Sim backend through the engine == direct backend call.
    let query = step_query(
        net.layers(),
        fleet(4, InterconnectKind::NvLink, Some(TopologyKind::Ring)),
        4,
        true,
    );
    let via_engine = Engine::new(sim()).evaluate_step(&query).unwrap();
    let direct = sim().evaluate_step(&query).unwrap();
    assert_eq!(via_engine, direct);
    let t = &via_engine.timeline;
    assert!(t.overlap);
    assert!(t.comm_seconds > 0.0);
    assert_eq!(t.per_device.len(), 4);
    // Spans: forward in order, then backward reversed; comm buckets in
    // ready order starting from the last layer.
    let dev = &t.per_device[0];
    assert_eq!(dev.compute[0].kind, SpanKind::Forward);
    assert_eq!(dev.compute[0].label, "conv1");
    assert_eq!(dev.compute.last().unwrap().kind, SpanKind::Wgrad);
    assert_eq!(dev.compute.last().unwrap().label, "conv1");
    assert!(dev.comm[0].label.contains("conv5"), "{}", dev.comm[0].label);
    // Model backend: the serial fallback, no comm stream, bounds hold.
    let model = Engine::new(Delta::new(GpuSpec::titan_xp()))
        .evaluate_step(&StepQuery::new(net.layers(), Parallelism::Single))
        .unwrap()
        .timeline;
    assert_eq!(model.comm_seconds, 0.0);
    assert_eq!(model.step_seconds, model.serial_seconds);
    assert!(model.bounds_hold());
}

#[test]
fn table_and_timeline_come_from_one_replay_per_unique_shape() {
    // The double-replay fix, asserted via the simulator's replay
    // counter: one step query answers both the per-layer table and the
    // scheduled timeline from exactly one replay per unique transformed
    // layer shape (fwd ∪ dgrad ∪ wgrad). PR 4 ran the set twice — once
    // for the table, once for the timeline.
    use delta_model::engine::LayerShape;
    use delta_model::training;
    let net = delta_networks::alexnet(2).expect("builtin network");
    let mut unique = std::collections::HashSet::new();
    for (i, l) in net.layers().iter().enumerate() {
        unique.insert(LayerShape::of(l));
        if i > 0 {
            unique.insert(LayerShape::of(&training::dgrad_layer(l).unwrap()));
        }
        unique.insert(LayerShape::of(&training::wgrad_layer(l).unwrap()));
    }

    let s = sim();
    assert_eq!(s.replay_count(), 0);
    let eval = s
        .evaluate_step(&step_query(
            net.layers(),
            fleet(4, InterconnectKind::NvLink, None),
            25,
            true,
        ))
        .unwrap();
    assert_eq!(
        s.replay_count(),
        unique.len() as u64,
        "each unique shape replays exactly once"
    );
    // Both views were actually produced.
    assert_eq!(eval.table.rows.len(), net.len());
    assert!(eval.timeline.comm_seconds > 0.0);

    // The engine path replays the same count (its cache cannot serve a
    // timeline, but it must not *add* replays either).
    let s2 = sim();
    let engine = Engine::new(s2.clone());
    engine
        .evaluate_step(&step_query(
            net.layers(),
            fleet(4, InterconnectKind::NvLink, None),
            25,
            true,
        ))
        .unwrap();
    assert_eq!(s2.replay_count(), unique.len() as u64);
}

#[test]
fn warm_step_cache_answers_with_zero_replays() {
    // Cache v3's acceptance contract: a repeated step query — same
    // process or warmed through a cache file — is answered from the
    // step cache with ZERO layer replays and a byte-identical result.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let par = || fleet(4, InterconnectKind::NvLink, Some(TopologyKind::Ring));
    let query = step_query(net.layers(), par(), 25, true);
    let s = sim();
    let engine = Engine::new(s.clone());
    let cold = engine.evaluate_step(&query).unwrap();
    let cold_replays = s.replay_count();
    assert!(cold_replays > 0);
    let warm = engine.evaluate_step(&query).unwrap();
    assert_eq!(warm, cold);
    assert_eq!(
        s.replay_count(),
        cold_replays,
        "a warm step hit performs zero replays"
    );
    assert_eq!(engine.cache_stats().step_hits, 1);

    // Through a v3 cache file: a fresh engine on a fresh simulator
    // answers byte-identically having replayed nothing at all.
    let dir = std::env::temp_dir().join("delta_warm_step_cache_test");
    let path = dir.join("cache.json");
    engine.save_cache(&path).unwrap();
    let s2 = sim();
    let loaded = Engine::new(s2.clone());
    loaded.load_cache(&path).unwrap();
    let from_file = loaded.evaluate_step(&query).unwrap();
    assert_eq!(from_file, cold);
    assert_eq!(s2.replay_count(), 0, "zero replays on a warm file");
    assert_eq!(loaded.cache_stats().step_hits, 1);

    // Renamed layers (same shapes) share the label-free fingerprint:
    // the hit is relabeled — rows, compute spans, and bucket span
    // labels — to bitwise what a fresh engine computes.
    let renamed: Vec<delta_model::ConvLayer> = net
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| l.with_label(format!("x{i}")))
        .collect();
    let renamed_query = step_query(&renamed, par(), 25, true);
    let hit = loaded.evaluate_step(&renamed_query).unwrap();
    assert_eq!(s2.replay_count(), 0, "relabeled hit still replays nothing");
    let fresh = Engine::new(sim()).evaluate_step(&renamed_query).unwrap();
    assert_eq!(hit, fresh);
    let comm0 = &hit.timeline.per_device[0].comm[0];
    assert!(comm0.label.contains("x4"), "{}", comm0.label);
}

#[test]
fn cache_entries_from_other_fabrics_never_collide() {
    // The key-equality half of stale-config protection: one engine, one
    // cache, every fabric configuration keyed apart. An nvlink-priced
    // entry can never answer a pcie (or topology-priced) query.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let engine = Engine::new(sim());
    let l = &net.layers()[0];
    engine
        .evaluate(&EvalQuery::forward(
            l,
            fleet(4, InterconnectKind::NvLink, None),
        ))
        .unwrap();
    assert_eq!(engine.cache_stats().misses, 1);
    // Key distinctness is the contract — even where the values happen to
    // coincide (a 1–2 column layer moves no halo bytes), the pcie query
    // must reach the backend rather than replay the nvlink entry.
    engine
        .evaluate(&EvalQuery::forward(
            l,
            fleet(4, InterconnectKind::Pcie, None),
        ))
        .unwrap();
    assert_eq!(
        engine.cache_stats().misses,
        2,
        "distinct fabric, distinct key"
    );
    for kind in TopologyKind::ALL {
        engine
            .evaluate(&EvalQuery::forward(
                l,
                fleet(4, InterconnectKind::NvLink, Some(kind)),
            ))
            .unwrap();
    }
    assert_eq!(
        engine.cache_stats().misses,
        2 + TopologyKind::ALL.len() as u64
    );
    // Repeats of every configuration hit.
    engine
        .evaluate(&EvalQuery::forward(
            l,
            fleet(4, InterconnectKind::NvLink, None),
        ))
        .unwrap();
    assert_eq!(engine.cache_stats().hits, 1);
}

#[test]
fn cache_files_carry_fabric_keys_and_refuse_sampling_mismatch() {
    // The persistent-cache half: a file written under one fabric loads
    // into an engine querying another (the keys simply never match),
    // while a different *sampling* configuration — which the query
    // cannot express — is refused outright.
    let dir = std::env::temp_dir().join("delta_overlap_cache_keys_test");
    let path = dir.join("cache.json");
    let net = delta_networks::alexnet(2).expect("builtin network");
    let l = &net.layers()[0];

    let producer = Engine::new(sim());
    let nv = producer
        .evaluate(&EvalQuery::forward(
            l,
            fleet(4, InterconnectKind::NvLink, None),
        ))
        .unwrap();
    assert!(producer.save_cache(&path).unwrap() > 0);

    // Same sampling configuration: loads fine, nvlink queries hit,
    // pcie queries miss to the backend (never served stale prices).
    let consumer = Engine::new(sim());
    consumer.load_cache(&path).unwrap();
    assert_eq!(
        consumer
            .evaluate(&EvalQuery::forward(
                l,
                fleet(4, InterconnectKind::NvLink, None)
            ))
            .unwrap(),
        nv
    );
    assert_eq!(consumer.cache_stats().misses, 0);
    consumer
        .evaluate(&EvalQuery::forward(
            l,
            fleet(4, InterconnectKind::Pcie, None),
        ))
        .unwrap();
    assert_eq!(consumer.cache_stats().misses, 1, "pcie reached the backend");

    // Different sampling fingerprint: refused.
    let exhaustive = Engine::new(Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive()));
    let err = exhaustive.load_cache(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("configuration"), "{err}");

    // And a topology-priced cache round-trips into a topology query.
    let topo_path = dir.join("topo_cache.json");
    let topo_par = fleet(4, InterconnectKind::NvLink, Some(TopologyKind::Switch));
    let topo_producer = Engine::new(sim());
    let est = topo_producer
        .evaluate(&EvalQuery::forward(l, topo_par.clone()))
        .unwrap();
    topo_producer.save_cache(&topo_path).unwrap();
    let topo_consumer = Engine::new(sim());
    topo_consumer.load_cache(&topo_path).unwrap();
    assert_eq!(
        topo_consumer
            .evaluate(&EvalQuery::forward(l, topo_par))
            .unwrap(),
        est
    );
    assert_eq!(topo_consumer.cache_stats().misses, 0);
}

#[test]
fn backend_trait_routes_the_step_evaluation() {
    // The `Backend` seam itself: the simulator's override and the
    // reference-forwarding impl both reach the collective scheduler.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let query = step_query(
        net.layers(),
        fleet(4, InterconnectKind::NvLink, Some(TopologyKind::Mesh)),
        8,
        true,
    );
    let s = sim();
    let direct = s.evaluate_step(&query).unwrap();
    let by_ref: &dyn Backend = &&s;
    assert_eq!(by_ref.evaluate_step(&query).unwrap(), direct);
    assert!(direct.timeline.comm_seconds > 0.0);
}
