//! Cross-crate integration of the topology-aware collective scheduler:
//! `SimConfig::{topology, bucket_mb, overlap}` through `Backend`,
//! `Engine`, and the persistent cache.
//!
//! Three acceptance contracts are pinned here (mirroring the CI perf
//! gate):
//!
//! 1. **legacy identity** — with the scalar interconnect presets (no
//!    `--topology`) the multi-GPU evaluation is byte-identical, down to
//!    the serialized JSON, to the pre-scheduler output (a golden file
//!    captured before the topology subsystem landed);
//! 2. **scheduling bounds** — for every topology × device count ×
//!    bucket size, the overlapped step satisfies
//!    `max(compute, comm) <= step <= serial`, and with overlap off the
//!    step *is* the serial schedule, bitwise;
//! 3. **cache hygiene** — a persistent cache file written under a
//!    different interconnect, topology, or sampling configuration is
//!    refused, never silently replayed.

use delta_model::engine::Engine;
use delta_model::schedule::SpanKind;
use delta_model::{Backend, Delta, GpuSpec};
use delta_sim::{InterconnectKind, SimConfig, Simulator, TopologyKind};

fn sim(config: SimConfig) -> Simulator {
    Simulator::new(GpuSpec::titan_xp(), config)
}

fn nvlink() -> SimConfig {
    SimConfig {
        interconnect: InterconnectKind::NvLink,
        ..SimConfig::default()
    }
}

#[test]
fn legacy_scalar_presets_match_the_pre_scheduler_golden_bytes() {
    // The acceptance criterion behind `delta network alexnet --backend
    // sim --gpus 4 --batch 2 --json` with the default (nvlink) scalar
    // preset: the serialized evaluation must be byte-identical to the
    // output captured before the topology/overlap subsystem existed.
    // This is what keeps `topology: None` an exact superset of PR 3.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let eval = Engine::new(sim(nvlink()))
        .evaluate_network_multi(net.layers(), 4)
        .expect("simulable network");
    let json = serde_json::to_string_pretty(&eval).unwrap();
    let golden = include_str!("golden/net_alexnet_sim_gpus4_nvlink_b2.json");
    assert_eq!(json.trim_end(), golden.trim_end());
}

#[test]
fn topology_changes_pricing_but_never_the_merge() {
    // An explicit topology reprices link traffic and time; the on-device
    // measurement (the merge) must stay bitwise identical.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let legacy = Engine::new(sim(nvlink()))
        .evaluate_network_multi(net.layers(), 4)
        .unwrap();
    for kind in TopologyKind::ALL {
        let topo = Engine::new(sim(SimConfig {
            topology: Some(kind),
            ..nvlink()
        }))
        .evaluate_network_multi(net.layers(), 4)
        .unwrap();
        for (a, b) in legacy.rows.iter().zip(&topo.rows) {
            assert_eq!(a.estimate.l1_bytes, b.estimate.l1_bytes, "{kind}");
            assert_eq!(a.estimate.l2_bytes, b.estimate.l2_bytes, "{kind}");
            assert_eq!(
                a.estimate.dram_read_bytes, b.estimate.dram_read_bytes,
                "{kind}"
            );
            assert_eq!(
                a.estimate.dram_write_bytes, b.estimate.dram_write_bytes,
                "{kind}"
            );
        }
        // The derived multiplier actually bites: the switch star (2 hops
        // everywhere) moves more halo bytes than the scalar preset's
        // factor 1.0.
        if kind == TopologyKind::Switch {
            let link_legacy: f64 = legacy.rows.iter().map(|r| r.estimate.link_bytes).sum();
            let link_topo: f64 = topo.rows.iter().map(|r| r.estimate.link_bytes).sum();
            assert!(link_topo > link_legacy, "{link_topo} vs {link_legacy}");
        }
    }
    // Under ideal, every topology is the zero-cost identity.
    for kind in TopologyKind::ALL {
        let ideal = Engine::new(sim(SimConfig {
            topology: Some(kind),
            ..SimConfig::default()
        }))
        .evaluate_network_multi(net.layers(), 4)
        .unwrap();
        let ideal_plain = Engine::new(sim(SimConfig::default()))
            .evaluate_network_multi(net.layers(), 4)
            .unwrap();
        assert_eq!(ideal.rows, ideal_plain.rows, "{kind}");
    }
}

#[test]
fn scheduled_step_satisfies_the_bounds_for_every_config() {
    let net = delta_networks::alexnet(2).expect("builtin network");
    for kind in TopologyKind::ALL {
        for g in [1u32, 2, 4, 8] {
            for bucket_mb in [1u32, 25, 1024] {
                let overlapped = sim(SimConfig {
                    topology: Some(kind),
                    bucket_mb,
                    overlap: true,
                    ..nvlink()
                })
                .schedule_training_step(net.layers(), g)
                .unwrap();
                assert!(
                    overlapped.bounds_hold(),
                    "{kind} g={g} bucket={bucket_mb}: compute {}, comm {}, step {}, serial {}",
                    overlapped.compute_seconds,
                    overlapped.comm_seconds,
                    overlapped.step_seconds,
                    overlapped.serial_seconds
                );
                let serial = sim(SimConfig {
                    topology: Some(kind),
                    bucket_mb,
                    overlap: false,
                    ..nvlink()
                })
                .schedule_training_step(net.layers(), g)
                .unwrap();
                // Overlap off: the step IS the serial schedule, bitwise.
                assert_eq!(serial.step_seconds, serial.serial_seconds);
                // The overlapped step never loses to the serial one.
                assert!(overlapped.step_seconds <= serial.step_seconds);
                if g == 1 {
                    // One device exchanges nothing.
                    assert_eq!(overlapped.comm_seconds, 0.0);
                    assert_eq!(overlapped.step_seconds, overlapped.compute_seconds);
                }
            }
        }
    }
}

#[test]
fn smaller_buckets_hide_more_communication() {
    // One giant bucket cannot launch before the last gradient is ready,
    // so everything is exposed; fine buckets stream behind backward
    // compute. The hierarchical topology's slow uplink makes the effect
    // visible on a small network.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let schedule = |bucket_mb: u32| {
        sim(SimConfig {
            topology: Some(TopologyKind::Hierarchical),
            bucket_mb,
            overlap: true,
            ..nvlink()
        })
        .schedule_training_step(net.layers(), 8)
        .unwrap()
    };
    let fine = schedule(1);
    let coarse = schedule(1024);
    assert_eq!(coarse.per_device[0].comm.len(), 1, "one giant bucket");
    assert!(fine.per_device[0].comm.len() > 1);
    assert!(
        fine.exposed_comm_seconds <= coarse.exposed_comm_seconds,
        "fine {} vs coarse {}",
        fine.exposed_comm_seconds,
        coarse.exposed_comm_seconds
    );
    assert!(fine.step_seconds <= coarse.step_seconds);
    // Both agree on the compute stream.
    assert_eq!(fine.compute_seconds, coarse.compute_seconds);
}

#[test]
fn engine_routes_the_scheduled_step_and_model_falls_back_to_serial() {
    let net = delta_networks::alexnet(2).expect("builtin network");
    // Sim backend through the engine == direct simulator call.
    let config = SimConfig {
        topology: Some(TopologyKind::Ring),
        bucket_mb: 4,
        overlap: true,
        ..nvlink()
    };
    let via_engine = Engine::new(sim(config))
        .evaluate_training_step_scheduled(net.layers(), 4)
        .unwrap();
    let direct = sim(config).schedule_training_step(net.layers(), 4).unwrap();
    assert_eq!(via_engine, direct);
    assert!(via_engine.overlap);
    assert!(via_engine.comm_seconds > 0.0);
    assert_eq!(via_engine.per_device.len(), 4);
    // Spans: forward in order, then backward reversed; comm buckets in
    // ready order starting from the last layer.
    let dev = &via_engine.per_device[0];
    assert_eq!(dev.compute[0].kind, SpanKind::Forward);
    assert_eq!(dev.compute[0].label, "conv1");
    assert_eq!(dev.compute.last().unwrap().kind, SpanKind::Wgrad);
    assert_eq!(dev.compute.last().unwrap().label, "conv1");
    assert!(dev.comm[0].label.contains("conv5"), "{}", dev.comm[0].label);
    // Model backend: the serial fallback, no comm stream, bounds hold.
    let model = Engine::new(Delta::new(GpuSpec::titan_xp()))
        .evaluate_training_step_scheduled(net.layers(), 4)
        .unwrap();
    assert_eq!(model.comm_seconds, 0.0);
    assert_eq!(model.step_seconds, model.serial_seconds);
    assert!(model.bounds_hold());
}

#[test]
fn cache_files_from_other_configurations_are_refused() {
    // Satellite: the persistent cache must reject files whose producing
    // configuration differs — interconnect, topology, scheduler knobs,
    // or sampling limits — instead of silently replaying stale prices.
    let dir = std::env::temp_dir().join("delta_overlap_cache_refusal_test");
    let path = dir.join("cache.json");
    let net = delta_networks::alexnet(2).expect("builtin network");

    let producer = Engine::new(sim(nvlink()));
    producer.evaluate_network_multi(net.layers(), 4).unwrap();
    assert!(producer.save_cache(&path).unwrap() > 0);

    // Same configuration: loads fine.
    let same = Engine::new(sim(nvlink()));
    assert!(same.load_cache(&path).is_ok());

    // Different interconnect preset: refused.
    let other_ic = Engine::new(sim(SimConfig {
        interconnect: InterconnectKind::Pcie,
        ..SimConfig::default()
    }));
    let err = other_ic.load_cache(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("configuration"), "{err}");

    // A topology graph vs. the scalar preset: refused (the halo
    // multiplier differs, so cached link charges would be wrong).
    for kind in TopologyKind::ALL {
        let topo = Engine::new(sim(SimConfig {
            topology: Some(kind),
            ..nvlink()
        }));
        let err = topo.load_cache(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{kind}");
    }

    // Different sampling fingerprint: refused.
    let exhaustive = Engine::new(sim(SimConfig {
        interconnect: InterconnectKind::NvLink,
        ..SimConfig::exhaustive()
    }));
    assert!(exhaustive.load_cache(&path).is_err());

    // Different scheduler knobs: the fingerprint covers the whole
    // SimConfig, so these are refused too (coarse but safe).
    let overlap = Engine::new(sim(SimConfig {
        overlap: true,
        ..nvlink()
    }));
    assert!(overlap.load_cache(&path).is_err());
    let bucket = Engine::new(sim(SimConfig {
        bucket_mb: 4,
        ..nvlink()
    }));
    assert!(bucket.load_cache(&path).is_err());

    // And a topology-produced cache round-trips into the same topology.
    let topo_path = dir.join("topo_cache.json");
    let topo_cfg = SimConfig {
        topology: Some(TopologyKind::Switch),
        ..nvlink()
    };
    let topo_producer = Engine::new(sim(topo_cfg));
    let est = topo_producer
        .evaluate_layer_multi(&net.layers()[0], 4)
        .unwrap();
    topo_producer.save_cache(&topo_path).unwrap();
    let topo_consumer = Engine::new(sim(topo_cfg));
    topo_consumer.load_cache(&topo_path).unwrap();
    assert_eq!(
        topo_consumer
            .evaluate_layer_multi(&net.layers()[0], 4)
            .unwrap(),
        est
    );
    assert_eq!(topo_consumer.cache_stats().misses, 0);
}

#[test]
fn backend_trait_routes_the_scheduled_estimate() {
    // The `Backend` seam itself: the simulator's override and the
    // reference-forwarding impl both reach the collective scheduler.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let config = SimConfig {
        topology: Some(TopologyKind::Mesh),
        bucket_mb: 8,
        overlap: true,
        ..nvlink()
    };
    let s = sim(config);
    let direct = s.schedule_training_step(net.layers(), 4).unwrap();
    let via_trait = Backend::estimate_training_step_scheduled(&s, net.layers(), 4).unwrap();
    assert_eq!(via_trait, direct);
    let by_ref: &dyn Backend = &&s;
    assert_eq!(
        by_ref
            .estimate_training_step_scheduled(net.layers(), 4)
            .unwrap(),
        direct
    );
}
