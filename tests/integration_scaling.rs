//! Cross-crate checks of the §VII-C scaling study through the public API
//! (a smaller, faster variant of the full Fig. 16 harness).

use delta_model::{Bottleneck, Delta, DesignOption, GpuSpec};
use delta_networks::resnet152;

fn total_seconds(delta: &Delta) -> f64 {
    resnet152(64)
        .unwrap()
        .layers()
        .iter()
        .map(|l| delta.estimate_performance(l).unwrap().seconds)
        .sum()
}

#[test]
fn conventional_sm_scaling_yields_sublinear_speedup() {
    // Option 2: 4x SMs + 2x memory BW -> the paper predicts 3.4x, not 4x.
    let base = GpuSpec::titan_xp();
    let t0 = total_seconds(&Delta::new(base.clone()));
    let opt2 = &DesignOption::paper_options()[1];
    let t = total_seconds(&opt2.model(&base).unwrap());
    let speedup = t0 / t;
    assert!(
        (2.0..4.0).contains(&speedup),
        "4x SMs should give sublinear 2-4x, got {speedup:.2}"
    );
}

#[test]
fn mac_only_scaling_hits_the_memory_wall() {
    // Options 3-4 (2x/4x MAC only): the paper predicts headroom capped
    // near 2x.
    let base = GpuSpec::titan_xp();
    let t0 = total_seconds(&Delta::new(base.clone()));
    let opts = DesignOption::paper_options();
    let s3 = t0 / total_seconds(&opts[2].model(&base).unwrap());
    let s4 = t0 / total_seconds(&opts[3].model(&base).unwrap());
    assert!(s3 > 1.2 && s3 < 2.6, "option 3: {s3:.2}");
    assert!(
        s4 < s3 * 2.0,
        "doubling MACs again barely helps: {s4:.2} vs {s3:.2}"
    );
}

#[test]
fn balanced_scaling_beats_mac_only_at_same_mac_budget() {
    // Option 5 has the same 4x MAC as option 4 plus rebalanced memory;
    // it must be strictly faster.
    let base = GpuSpec::titan_xp();
    let opts = DesignOption::paper_options();
    let t4 = total_seconds(&opts[3].model(&base).unwrap());
    let t5 = total_seconds(&opts[4].model(&base).unwrap());
    assert!(t5 < t4, "balanced {t5} vs MAC-only {t4}");
}

#[test]
fn bottlenecks_shift_from_mac_to_memory_as_macs_scale() {
    let base = GpuSpec::titan_xp();
    let count_mac = |delta: &Delta| -> usize {
        resnet152(64)
            .unwrap()
            .layers()
            .iter()
            .filter(|l| delta.estimate_performance(l).unwrap().bottleneck == Bottleneck::MacBw)
            .count()
    };
    let base_mac = count_mac(&Delta::new(base.clone()));
    let opt4 = &DesignOption::paper_options()[3];
    let scaled_mac = count_mac(&opt4.model(&base).unwrap());
    assert!(
        scaled_mac < base_mac,
        "4x MACs: {scaled_mac} MAC-bound layers vs baseline {base_mac}"
    );
}

#[test]
fn option_applies_compose_with_custom_bases() {
    // Design options are multiplicative, so they apply to any base GPU.
    let opt = &DesignOption::paper_options()[0];
    for base in GpuSpec::paper_devices() {
        let g = opt.apply(&base).unwrap();
        assert_eq!(g.num_sm(), base.num_sm() * 2);
        assert!((g.dram_bw_gbps() - base.dram_bw_gbps() * 1.5).abs() < 1e-9);
    }
}
