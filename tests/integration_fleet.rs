//! Integration suite for the distributed executor fleet: real sockets,
//! real worker processes' worth of isolation (each executor owns its
//! own `Simulator`), and the merge contract checked the strictest way
//! available — **byte-identical JSON** between the distributed answer
//! and the in-process one.
//!
//! Pins, end to end:
//!
//! * `EvalQuery` answers (Single / Sharded / Multi, forward and wgrad)
//!   are bitwise identical to the local backend for executor counts
//!   {1, 2, 4};
//! * `StepQuery` answers (table + timeline) are bitwise identical too;
//! * killing an executor mid-run re-queues its jobs and still answers
//!   bitwise identically;
//! * duplicate reply delivery is dropped idempotently;
//! * a stalled fleet exhausts the bounded retry budget with a clean
//!   `Error::Fleet`, never a hang or a partial result;
//! * the handshake refuses a mismatched backend fingerprint with an
//!   error naming both sides.

use delta_fleet::{
    spawn_local_executors, Coordinator, ExecutorConfig, FaultPlan, FleetConfig, PROTOCOL_VERSION,
};
use delta_model::{
    Backend, ConvLayer, Error, EvalQuery, GpuSpec, InterconnectKind, Parallelism, Pass, StepQuery,
};
use delta_sim::{SimConfig, Simulator};
use std::time::Duration;

fn sim() -> Simulator {
    Simulator::new(GpuSpec::titan_xp(), SimConfig::default())
}

/// Co = 512 -> LARGE tile -> several tile columns (the column axis).
fn wide_layer() -> ConvLayer {
    ConvLayer::builder("wide")
        .batch(2)
        .input(16, 14, 14)
        .output_channels(512)
        .filter(3, 3)
        .pad(1)
        .build()
        .unwrap()
}

/// Few columns, many batches -> the row axis under high worker counts.
fn narrow_layer() -> ConvLayer {
    ConvLayer::builder("narrow")
        .batch(64)
        .input(64, 14, 14)
        .output_channels(128)
        .filter(3, 3)
        .pad(1)
        .build()
        .unwrap()
}

/// Spawns `n` local executors and a coordinator over them, with test
/// patience (short timeout so failure paths run fast, generous budget
/// unless a test overrides it).
fn fleet(n: u32) -> (Vec<delta_fleet::ExecutorHandle>, Coordinator) {
    let handles = spawn_local_executors(&sim(), n).expect("spawn executors");
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    let config = FleetConfig {
        executors: addrs,
        job_timeout: Duration::from_secs(10),
        retry_budget: 3,
    };
    let coordinator = Coordinator::connect(sim(), config).expect("handshake");
    (handles, coordinator)
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

fn devices(g: usize) -> Parallelism {
    Parallelism::Multi {
        devices: vec![GpuSpec::titan_xp(); g],
        interconnect: InterconnectKind::NvLink,
        topology: None,
    }
}

#[test]
fn eval_queries_are_bitwise_identical_for_every_executor_count() {
    let local = sim();
    let queries = [
        EvalQuery::new(&wide_layer(), Pass::Fwd, Parallelism::Single),
        EvalQuery::new(
            &wide_layer(),
            Pass::Fwd,
            Parallelism::Sharded { workers: 3 },
        ),
        // More workers than the narrow layer has columns: the row axis.
        EvalQuery::new(
            &narrow_layer(),
            Pass::Fwd,
            Parallelism::Sharded { workers: 5 },
        ),
        EvalQuery::new(
            &wide_layer(),
            Pass::Dgrad,
            Parallelism::Sharded { workers: 2 },
        ),
        EvalQuery::new(&wide_layer(), Pass::Fwd, devices(2)),
        // Wgrad under Multi exercises the all-reduce surcharge path.
        EvalQuery::new(&wide_layer(), Pass::Wgrad, devices(2)),
    ];
    let expected: Vec<String> = queries
        .iter()
        .map(|q| json(&local.evaluate(q).expect("local evaluate")))
        .collect();
    for executors in [1u32, 2, 4] {
        let (_handles, coordinator) = fleet(executors);
        for (q, want) in queries.iter().zip(&expected) {
            let got = json(&coordinator.evaluate(q).expect("fleet evaluate"));
            assert_eq!(&got, want, "executors={executors} query={q:?}");
        }
    }
}

#[test]
fn step_queries_are_bitwise_identical_for_every_executor_count() {
    let local = sim();
    let layers = [wide_layer(), narrow_layer()];
    let queries = [
        StepQuery::new(&layers, Parallelism::Sharded { workers: 4 }),
        StepQuery::new(&layers, devices(2)),
    ];
    let expected: Vec<String> = queries
        .iter()
        .map(|q| json(&local.evaluate_step(q).expect("local step")))
        .collect();
    for executors in [1u32, 2, 4] {
        let (_handles, coordinator) = fleet(executors);
        for (q, want) in queries.iter().zip(&expected) {
            let got = json(&coordinator.evaluate_step(q).expect("fleet step"));
            assert_eq!(&got, want, "executors={executors}");
        }
    }
}

#[test]
fn a_mid_run_executor_death_recovers_bitwise() {
    let local = sim();
    let query = EvalQuery::new(
        &wide_layer(),
        Pass::Fwd,
        Parallelism::Sharded { workers: 4 },
    );
    let want = json(&local.evaluate(&query).expect("local evaluate"));

    // One healthy executor, one that dies after its first job: its
    // remaining jobs must be re-queued onto the survivor.
    let healthy = delta_fleet::executor::spawn(sim(), ExecutorConfig::new("127.0.0.1:0"))
        .expect("spawn healthy");
    let doomed = delta_fleet::executor::spawn(
        sim(),
        ExecutorConfig {
            addr: "127.0.0.1:0".into(),
            fault: FaultPlan {
                die_after_jobs: Some(1),
                ..FaultPlan::default()
            },
        },
    )
    .expect("spawn doomed");
    let coordinator = Coordinator::connect(
        sim(),
        FleetConfig {
            executors: vec![healthy.addr().to_string(), doomed.addr().to_string()],
            job_timeout: Duration::from_secs(10),
            retry_budget: 5,
        },
    )
    .expect("handshake");

    let got = json(&coordinator.evaluate(&query).expect("fleet evaluate"));
    assert_eq!(got, want, "death recovery must not change a single byte");
    let stats = coordinator.stats();
    assert!(
        stats.redispatches >= 1,
        "the dead executor's job must have been re-dispatched: {stats:?}"
    );
    assert!(
        stats.executors_lost >= 1,
        "the dead executor must be detected as lost: {stats:?}"
    );
    drop((healthy, doomed));
}

#[test]
fn duplicate_reply_delivery_is_dropped_idempotently() {
    let local = sim();
    let query = EvalQuery::new(
        &wide_layer(),
        Pass::Fwd,
        Parallelism::Sharded { workers: 4 },
    );
    let want = json(&local.evaluate(&query).expect("local evaluate"));

    let chatty = delta_fleet::executor::spawn(
        sim(),
        ExecutorConfig {
            addr: "127.0.0.1:0".into(),
            fault: FaultPlan {
                duplicate_replies: true,
                ..FaultPlan::default()
            },
        },
    )
    .expect("spawn chatty");
    let coordinator = Coordinator::connect(
        sim(),
        FleetConfig {
            executors: vec![chatty.addr().to_string()],
            job_timeout: Duration::from_secs(10),
            retry_budget: 3,
        },
    )
    .expect("handshake");

    let got = json(&coordinator.evaluate(&query).expect("fleet evaluate"));
    assert_eq!(got, want, "duplicate delivery must not change a byte");
    assert!(
        coordinator.stats().duplicates_dropped >= 1,
        "at least one duplicate must have been observed and dropped: {:?}",
        coordinator.stats()
    );
    drop(chatty);
}

#[test]
fn a_stalled_fleet_exhausts_the_retry_budget_cleanly() {
    let stalled = delta_fleet::executor::spawn(
        sim(),
        ExecutorConfig {
            addr: "127.0.0.1:0".into(),
            fault: FaultPlan {
                stall_after_jobs: Some(0),
                ..FaultPlan::default()
            },
        },
    )
    .expect("spawn stalled");
    let coordinator = Coordinator::connect(
        sim(),
        FleetConfig {
            executors: vec![stalled.addr().to_string()],
            job_timeout: Duration::from_millis(200),
            retry_budget: 2,
        },
    )
    .expect("handshake");

    let query = EvalQuery::new(
        &wide_layer(),
        Pass::Fwd,
        Parallelism::Sharded { workers: 2 },
    );
    let err = coordinator.evaluate(&query).expect_err("must not hang");
    assert!(matches!(err, Error::Fleet { .. }), "{err}");
    let msg = err.to_string();
    assert!(
        msg.contains("retry budget") && msg.contains('2'),
        "the error must name the exhausted budget: {msg}"
    );
    drop(stalled);
}

#[test]
fn the_handshake_refuses_a_mismatched_fingerprint_naming_both_sides() {
    // Executor simulates exhaustively; coordinator plans with sampling
    // limits. Their answers would differ, so the fleet must refuse.
    let exhaustive = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive());
    let executor = delta_fleet::executor::spawn(exhaustive, ExecutorConfig::new("127.0.0.1:0"))
        .expect("spawn executor");

    let planner = sim();
    let ours = delta_model::BackendFingerprint::of(&planner);
    let err = Coordinator::connect(planner, FleetConfig::new(vec![executor.addr().to_string()]))
        .expect_err("mismatched fingerprints must be refused");
    let msg = err.to_string();
    assert!(matches!(err, Error::Fleet { .. }), "{msg}");
    assert!(
        msg.contains("fingerprint mismatch"),
        "the refusal must say what is wrong: {msg}"
    );
    // Both sides' sampling configurations appear in the refusal, so the
    // operator can see exactly which knob disagrees.
    assert!(
        msg.contains(&ours.config),
        "the refusal must name the coordinator's fingerprint: {msg}"
    );
    let theirs = delta_model::BackendFingerprint::of(&Simulator::new(
        GpuSpec::titan_xp(),
        SimConfig::exhaustive(),
    ));
    assert!(
        msg.contains(&theirs.config),
        "the refusal must name the executor's fingerprint: {msg}"
    );
}

#[test]
fn trace_correlation_ids_stitch_coordinator_and_executor_spans() {
    // Arm span recording (process-wide and sticky; the other tests in
    // this binary never assert on spans, and the hard observability
    // invariant — checked by the identity tests above, which keep
    // passing whether or not this test armed tracing first — is that
    // recording never changes results).
    delta_obs::trace::set_enabled(true);
    let (_handles, coordinator) = fleet(2);
    let query = EvalQuery::new(
        &wide_layer(),
        Pass::Fwd,
        Parallelism::Sharded { workers: 4 },
    );
    coordinator.evaluate(&query).expect("fleet evaluate");

    // Correlation ids are minted from one process-global counter, so
    // grouping the drained events by nonzero id is robust against
    // spans other concurrently running tests may have recorded.
    let events = delta_obs::trace::drain();
    let mut by_corr: std::collections::HashMap<u64, Vec<String>> = std::collections::HashMap::new();
    for e in &events {
        if e.corr != 0 {
            by_corr.entry(e.corr).or_default().push(e.name.to_string());
        }
    }
    let stitched = by_corr
        .values()
        .filter(|names| {
            names.iter().any(|n| n == "fleet.query")
                && names.iter().any(|n| n == "fleet.dispatch")
                && names.iter().any(|n| n == "fleet.execute")
        })
        .count();
    assert!(
        stitched >= 1,
        "at least one coordinator-issued correlation id must group the \
         query, its dispatches, and the executor-side execute spans \
         shipped back in the replies: {by_corr:?}"
    );
}

#[test]
fn the_protocol_version_is_part_of_the_contract() {
    // A reminder that bumping the schema requires bumping the revision:
    // the constant is public API documented in docs/FLEET.md.
    assert_eq!(PROTOCOL_VERSION, 1);
}
