//! Cross-crate checks of the network zoo against the model: every
//! evaluated layer analyzes cleanly on every GPU, and the paper's
//! qualitative bottleneck findings hold.

use delta_model::{Bottleneck, Delta, GpuSpec};
use delta_networks::{paper_networks, PAPER_BATCH};

#[test]
fn every_layer_analyzes_on_every_gpu() {
    for gpu in GpuSpec::paper_devices() {
        let delta = Delta::new(gpu.clone());
        for net in paper_networks(PAPER_BATCH).unwrap() {
            for layer in net.layers() {
                let r = delta.analyze(layer).unwrap();
                assert!(r.perf.seconds > 0.0, "{} {}", net.name(), layer.label());
                assert!(r.traffic.l1_bytes > 0.0);
                assert!(r.traffic.l1_bytes >= r.traffic.l2_bytes * 0.2);
            }
        }
    }
}

#[test]
fn arithmetic_throughput_dominates_bottlenecks() {
    // §VII-B: "arithmetic throughput is the major performance bottleneck
    // (90% of evaluated layers)".
    let delta = Delta::new(GpuSpec::titan_xp());
    let mut total = 0usize;
    let mut mac = 0usize;
    for net in paper_networks(PAPER_BATCH).unwrap() {
        for layer in net.layers() {
            total += 1;
            if delta.estimate_performance(layer).unwrap().bottleneck == Bottleneck::MacBw {
                mac += 1;
            }
        }
    }
    let share = mac as f64 / total as f64;
    assert!(
        share > 0.7,
        "expected most layers MAC-bound, got {mac}/{total} = {share:.2}"
    );
    assert!(share < 1.0, "some layers must hit memory limits");
}

#[test]
fn vgg_dominates_total_compute() {
    // VGG16's 3x3-everywhere design gives it by far the heaviest conv
    // workload of the four networks.
    let nets = paper_networks(PAPER_BATCH).unwrap();
    let macs: Vec<(String, u64)> = nets
        .iter()
        .map(|n| (n.name().to_string(), n.total_macs()))
        .collect();
    let vgg = macs.iter().find(|(n, _)| n == "VGG16").unwrap().1;
    for (name, m) in &macs {
        if name != "VGG16" {
            assert!(vgg > *m, "VGG {vgg} vs {name} {m}");
        }
    }
}

#[test]
fn narrow_googlenet_branches_use_narrow_tiles() {
    // The 5x5red branches (Co in {16, 24, 32}) drive the Fig. 6 lookup
    // into the 128x32 tile.
    let delta = Delta::new(GpuSpec::titan_xp());
    let net = delta_networks::googlenet(PAPER_BATCH).unwrap();
    for label in ["3a_5x5red", "4b_5x5red"] {
        let l = net.layer(label).unwrap();
        assert_eq!(delta.tiling(l).tile().blk_n(), 32, "{label}");
    }
    let wide = net.layer("conv2_3x3").unwrap();
    assert_eq!(delta.tiling(wide).tile().blk_n(), 128);
}

#[test]
fn googlenet_has_memory_pressured_layers_on_scaled_gpu() {
    // §VII-B: "Many layers in GoogLeNet are bottlenecked by DRAM BW or
    // latency". With Table I's effective bandwidths, our reproduction
    // puts several GoogLeNet layers near the memory limit; scaling MAC
    // throughput 2x (design-option-3 style) pushes them over.
    let boosted = GpuSpec::titan_xp()
        .to_builder()
        .mac_gflops(2.0 * 12134.0)
        .build()
        .unwrap();
    let delta = Delta::new(boosted);
    let net = delta_networks::googlenet(PAPER_BATCH).unwrap();
    let memory_bound = net
        .layers()
        .iter()
        .filter(|l| {
            !matches!(
                delta.estimate_performance(l).unwrap().bottleneck,
                Bottleneck::MacBw | Bottleneck::SmemBw
            )
        })
        .count();
    assert!(
        memory_bound >= 3,
        "expected several memory-bound GoogLeNet layers, got {memory_bound}"
    );
}

#[test]
fn resnet_full_and_subset_agree_on_per_layer_estimates() {
    let delta = Delta::new(GpuSpec::titan_xp());
    let sub = delta_networks::resnet152(64).unwrap();
    let full = delta_networks::resnet152_full(64).unwrap();
    // conv2_1_b exists in both with identical config -> identical
    // estimate.
    let a = delta
        .estimate_performance(sub.layer("conv2_1_b").unwrap())
        .unwrap();
    let b = delta
        .estimate_performance(full.layer("conv2_1_b").unwrap())
        .unwrap();
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn network_rebatching_scales_model_time_roughly_linearly() {
    let delta = Delta::new(GpuSpec::titan_xp());
    let small = delta_networks::vgg16(32).unwrap();
    let big = delta_networks::vgg16(256).unwrap();
    let time = |net: &delta_networks::Network| -> f64 {
        net.layers()
            .iter()
            .map(|l| delta.estimate_performance(l).unwrap().seconds)
            .sum()
    };
    let ratio = time(&big) / time(&small);
    assert!(
        (6.0..=10.0).contains(&ratio),
        "8x batch should be ~8x time, got {ratio:.2}"
    );
}
