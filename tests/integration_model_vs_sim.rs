//! Cross-crate validation: the analytical model (delta-model) against the
//! trace-driven simulator (delta-sim) — the repository's equivalent of
//! the paper's model-vs-hardware validation (Figs. 11, 19, 20).

use delta_model::{ConvLayer, Delta, GpuSpec};
use delta_sim::{SimConfig, Simulator};

fn layer(ci: u32, hw: u32, co: u32, f: u32, s: u32, p: u32, b: u32) -> ConvLayer {
    ConvLayer::builder(format!("l{ci}_{hw}_{co}_{f}"))
        .batch(b)
        .input(ci, hw, hw)
        .output_channels(co)
        .filter(f, f)
        .stride(s)
        .pad(p)
        .build()
        .unwrap()
}

/// A representative mix: 3x3 mid-size, 1x1 pointwise, 5x5 wide-filter,
/// strided downsampler.
fn mix() -> Vec<ConvLayer> {
    vec![
        layer(64, 28, 128, 3, 1, 1, 8),
        layer(128, 14, 128, 1, 1, 0, 8),
        layer(32, 28, 64, 5, 1, 2, 8),
        layer(64, 56, 128, 1, 2, 0, 8),
    ]
}

#[test]
fn dram_model_tracks_simulator_within_2x() {
    // DRAM is the model's most accurate level in the paper (GMAE 2.8% on
    // Titan Xp); with small simulated batches we allow a 2x band.
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let sim = Simulator::new(gpu, SimConfig::exhaustive());
    for l in mix() {
        let est = delta.estimate_traffic(&l).unwrap();
        let meas = sim.run(&l);
        let ratio = est.dram_bytes / meas.dram_read_bytes;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "{}: model {:.3e} vs measured {:.3e} (ratio {ratio:.2})",
            l.label(),
            est.dram_bytes,
            meas.dram_read_bytes
        );
    }
}

#[test]
fn l1_model_tracks_simulator_on_ifmap_dominated_layers() {
    // The L1 model's known gap is the paper's filter-MLI constant
    // (2.0 vs the physical ~4.0, see EXPERIMENTS.md); layers whose
    // traffic is IFmap-dominated sidestep it, so the band is tight.
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let sim = Simulator::new(gpu, SimConfig::exhaustive());
    // Wide M, narrow N: IFmap side dominates.
    let l = layer(16, 56, 32, 3, 1, 1, 8);
    let est = delta.estimate_traffic(&l).unwrap();
    let meas = sim.run(&l);
    let ratio = est.l1_bytes / meas.l1_bytes;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "ratio {ratio:.3} ({:.3e} vs {:.3e})",
        est.l1_bytes,
        meas.l1_bytes
    );
}

#[test]
fn l2_model_tracks_simulator_within_band() {
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let sim = Simulator::new(gpu, SimConfig::exhaustive());
    for l in mix() {
        let est = delta.estimate_traffic(&l).unwrap();
        let meas = sim.run(&l);
        let ratio = est.l2_bytes / meas.l2_bytes;
        assert!(
            (0.3..=3.5).contains(&ratio),
            "{}: L2 ratio {ratio:.2}",
            l.label()
        );
    }
}

#[test]
fn model_and_sim_agree_on_relative_layer_cost() {
    // Even where absolute cycles drift, the model must order layers by
    // cost the same way the simulator does (what an architect actually
    // uses the model for).
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let sim = Simulator::new(gpu, SimConfig::default());
    let heavy = layer(256, 28, 256, 3, 1, 1, 8);
    let light = layer(64, 14, 64, 1, 1, 0, 8);
    let m_heavy = delta.estimate_performance(&heavy).unwrap().cycles;
    let m_light = delta.estimate_performance(&light).unwrap().cycles;
    let s_heavy = sim.run(&heavy).cycles;
    let s_light = sim.run(&light).cycles;
    assert!(m_heavy > 10.0 * m_light);
    assert!(s_heavy > 10.0 * s_light);
}

#[test]
fn volta_l1_granularity_reduces_measured_l1_traffic() {
    // §VII-A: Volta's 32B requests waste fewer bytes on scattered
    // accesses. A strided layer shows the gap in both model and sim.
    let l = layer(32, 27, 64, 5, 2, 2, 4);
    let xp_sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive()).run(&l);
    let v_sim = Simulator::new(GpuSpec::v100(), SimConfig::exhaustive()).run(&l);
    assert!(
        v_sim.l1_bytes < xp_sim.l1_bytes,
        "volta {} vs pascal {}",
        v_sim.l1_bytes,
        xp_sim.l1_bytes
    );
    let xp_model = Delta::new(GpuSpec::titan_xp())
        .estimate_traffic(&l)
        .unwrap();
    let v_model = Delta::new(GpuSpec::v100()).estimate_traffic(&l).unwrap();
    assert!(v_model.mli_ifmap <= xp_model.mli_ifmap);
}

#[test]
fn measured_miss_rates_vary_like_fig4() {
    // The motivation figure: different layer shapes produce widely
    // different miss rates on the same hardware.
    let gpu = GpuSpec::titan_xp();
    let sim = Simulator::new(gpu, SimConfig::exhaustive());
    let rates: Vec<f64> = mix().iter().map(|l| sim.run(l).l1_miss_rate).collect();
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max - min > 0.1, "spread {min}..{max} too narrow");
}

#[test]
fn reduced_batch_preserves_normalized_ratio() {
    // The harness's batch-reduction substitution (DESIGN.md §2): the
    // model/measured DRAM ratio at B=4 matches the ratio at B=12 within
    // a modest band, so normalized figures are batch-stable.
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let sim = Simulator::new(gpu, SimConfig::exhaustive());
    let ratio_at = |b: u32| {
        let l = layer(64, 28, 128, 3, 1, 1, b);
        let est = delta.estimate_traffic(&l).unwrap();
        let meas = sim.run(&l);
        est.dram_bytes / meas.dram_read_bytes
    };
    let r4 = ratio_at(4);
    let r12 = ratio_at(12);
    assert!(
        (r4 / r12 - 1.0).abs() < 0.35,
        "batch instability: {r4:.3} vs {r12:.3}"
    );
}
