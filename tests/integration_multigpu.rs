//! Cross-crate integration of the multi-GPU subsystem: the
//! `Parallelism::Multi { devices, interconnect, .. }` query (the CLI's
//! `--gpus G --interconnect I`) through `Backend` and `Engine`.
//!
//! Two acceptance contracts are pinned here (mirroring the CI perf
//! gate):
//!
//! 1. under the zero-cost `ideal` interconnect, a G-device evaluation is
//!    **byte-identical** (down to the serialized JSON) for every G — the
//!    device partition inherits the shard layer's merge identity, so the
//!    interconnect model is the only permitted source of divergence;
//! 2. a non-ideal interconnect **strictly increases** the reported
//!    DRAM+link traffic and time for G > 1, and never perturbs the
//!    on-device measurements.

use delta_model::engine::Engine;
use delta_model::query::{EvalQuery, Parallelism, Pass, StepQuery};
use delta_model::{Backend, ConvLayer, GpuSpec};
use delta_sim::{InterconnectKind, SimConfig, Simulator};

fn sim() -> Simulator {
    Simulator::new(GpuSpec::titan_xp(), SimConfig::default())
}

/// A homogeneous Titan Xp fleet with the scalar preset pricing.
fn fleet(g: u32, kind: InterconnectKind) -> Parallelism {
    Parallelism::multi(&GpuSpec::titan_xp(), g, kind)
}

/// A 16-column conv layer so 4 devices all own real work.
fn wide_layer() -> ConvLayer {
    ConvLayer::builder("conv5_1x1")
        .batch(4)
        .input(512, 7, 7)
        .output_channels(2048)
        .filter(1, 1)
        .build()
        .unwrap()
}

#[test]
fn ideal_network_json_is_byte_identical_for_1_2_4_devices() {
    // The acceptance criterion behind `delta network --backend sim
    // --gpus G --interconnect ideal --json`: the engine-level evaluation
    // serializes to exactly the same bytes for G in {1, 2, 4}.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let reference = Engine::new(sim())
        .evaluate_network(net.layers(), &fleet(1, InterconnectKind::Ideal))
        .expect("simulable network");
    let reference_json = serde_json::to_string_pretty(&reference).unwrap();
    for g in [2, 4] {
        let eval = Engine::new(sim())
            .evaluate_network(net.layers(), &fleet(g, InterconnectKind::Ideal))
            .expect("simulable network");
        assert_eq!(
            serde_json::to_string_pretty(&eval).unwrap(),
            reference_json,
            "devices={g}"
        );
    }
}

#[test]
fn ideal_multi_estimate_equals_single_device_sharded_estimate() {
    // The layer-level identity: G devices under ideal == the
    // single-device sharded run, bitwise, through the query interface.
    let l = wide_layer();
    let s = sim();
    let sharded = s
        .evaluate(&EvalQuery::forward(&l, Parallelism::Sharded { workers: 1 }))
        .unwrap();
    for g in [1, 2, 4] {
        let multi = s
            .evaluate(&EvalQuery::forward(&l, fleet(g, InterconnectKind::Ideal)))
            .unwrap();
        assert_eq!(multi, sharded, "devices={g}");
        assert_eq!(multi.link_bytes, 0.0, "devices={g}");
    }
}

#[test]
fn nonideal_interconnect_strictly_increases_offchip_traffic_and_time() {
    let l = wide_layer();
    let s = sim();
    let ideal = s
        .evaluate(&EvalQuery::forward(&l, fleet(4, InterconnectKind::Ideal)))
        .unwrap();
    for kind in [InterconnectKind::NvLink, InterconnectKind::Pcie] {
        for g in [2u32, 4] {
            let est = s.evaluate(&EvalQuery::forward(&l, fleet(g, kind))).unwrap();
            assert!(est.link_bytes > 0.0, "{kind} devices={g}");
            assert!(
                est.dram_and_link_bytes() > ideal.dram_and_link_bytes(),
                "{kind} devices={g}: {} <= {}",
                est.dram_and_link_bytes(),
                ideal.dram_and_link_bytes()
            );
            assert!(est.seconds > ideal.seconds, "{kind} devices={g}");
            assert!(est.cycles > ideal.cycles, "{kind} devices={g}");
            // On-device measurements are untouched: the interconnect is
            // the only source of divergence.
            assert_eq!(est.l1_bytes, ideal.l1_bytes, "{kind} devices={g}");
            assert_eq!(est.l2_bytes, ideal.l2_bytes, "{kind} devices={g}");
            assert_eq!(est.dram_read_bytes, ideal.dram_read_bytes);
            assert_eq!(est.dram_write_bytes, ideal.dram_write_bytes);
        }
        // One device never crosses a link, whatever the fabric.
        let single = s.evaluate(&EvalQuery::forward(&l, fleet(1, kind))).unwrap();
        assert_eq!(single.link_bytes, 0.0, "{kind}");
        assert_eq!(single.seconds, ideal.seconds, "{kind}");
    }
}

#[test]
fn training_step_all_reduces_gradients_per_layer() {
    // The data-parallel view: wgrad passes gain ring-all-reduce link
    // traffic on a non-ideal interconnect; forward/dgrad only the halo.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let ideal = Engine::new(sim())
        .evaluate_step(&StepQuery::new(
            net.layers(),
            fleet(4, InterconnectKind::Ideal),
        ))
        .unwrap()
        .table;
    let nvlink = Engine::new(sim())
        .evaluate_step(&StepQuery::new(
            net.layers(),
            fleet(4, InterconnectKind::NvLink),
        ))
        .unwrap()
        .table;
    for (i, (r0, r1)) in ideal.rows.iter().zip(&nvlink.rows).enumerate() {
        assert_eq!(
            r0.wgrad.link_bytes, 0.0,
            "row {i}: ideal all-reduce is free"
        );
        // 2 (G-1) x |gradient| on a ring of 4, topology factor 1.
        let expected = 2.0 * 3.0 * net.layers()[i].filter_bytes() as f64;
        assert!(
            r1.wgrad.link_bytes >= expected,
            "row {i}: {} < {expected}",
            r1.wgrad.link_bytes
        );
        assert!(r1.wgrad.seconds > r0.wgrad.seconds, "row {i}");
    }
    let total_link: f64 = nvlink
        .rows
        .iter()
        .map(|r| {
            r.forward.link_bytes
                + r.dgrad.as_ref().map_or(0.0, |d| d.link_bytes)
                + r.wgrad.link_bytes
        })
        .sum();
    assert!(total_link > 0.0);
}

#[test]
fn engine_caches_each_device_count_separately() {
    let l = wide_layer();
    let engine = Engine::new(sim());
    let two = engine
        .evaluate(&EvalQuery::forward(&l, fleet(2, InterconnectKind::NvLink)))
        .unwrap();
    let four = engine
        .evaluate(&EvalQuery::forward(&l, fleet(4, InterconnectKind::NvLink)))
        .unwrap();
    assert_eq!(
        engine.cache_stats().misses,
        2,
        "distinct device lists, distinct keys"
    );
    // More active devices refetch more halo: the cached entries really
    // are different quantities.
    assert!(four.link_bytes > two.link_bytes);
    // Repeats are hits, bitwise equal.
    assert_eq!(
        engine
            .evaluate(&EvalQuery::forward(&l, fleet(2, InterconnectKind::NvLink)))
            .unwrap(),
        two
    );
    assert_eq!(
        engine
            .evaluate(&EvalQuery::forward(&l, fleet(4, InterconnectKind::NvLink)))
            .unwrap(),
        four
    );
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 2);
    // The single-device sequential path is yet another key.
    engine
        .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
        .unwrap();
    assert_eq!(engine.cache_stats().misses, 3);
}

#[test]
fn multi_gpu_estimates_survive_the_persistent_cache() {
    // --cache-file end to end: multi-device entries round-trip with
    // their full query key intact.
    let dir = std::env::temp_dir().join("delta_multigpu_cache_test");
    let path = dir.join("cache.json");
    let l = wide_layer();

    let engine = Engine::new(sim());
    let four = engine
        .evaluate(&EvalQuery::forward(&l, fleet(4, InterconnectKind::Pcie)))
        .unwrap();
    let plain = engine
        .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
        .unwrap();
    assert_eq!(engine.save_cache(&path).unwrap(), 2);

    let fresh = Engine::new(sim());
    fresh.load_cache(&path).unwrap();
    assert_eq!(
        fresh
            .evaluate(&EvalQuery::forward(&l, fleet(4, InterconnectKind::Pcie)))
            .unwrap(),
        four
    );
    assert_eq!(
        fresh
            .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
            .unwrap(),
        plain
    );
    assert_eq!(fresh.cache_stats().misses, 0, "both served from the file");
    // An unseen device count still reaches the backend.
    fresh
        .evaluate(&EvalQuery::forward(&l, fleet(2, InterconnectKind::Pcie)))
        .unwrap();
    assert_eq!(fresh.cache_stats().misses, 1);

    // A different sampling configuration refuses the file instead of
    // silently replaying estimates computed under other limits.
    let exhaustive = Engine::new(Simulator::new(GpuSpec::titan_xp(), SimConfig::exhaustive()));
    assert!(exhaustive.load_cache(&path).is_err());
}

#[test]
fn wgrad_multi_queries_price_the_all_reduce_on_top() {
    // A wgrad query under Multi = the wgrad GEMM replay plus the ring
    // all-reduce of the *original* layer's filter gradients.
    let l = wide_layer();
    let s = sim();
    let ideal = s
        .evaluate(&EvalQuery::new(
            &l,
            Pass::Wgrad,
            fleet(4, InterconnectKind::Ideal),
        ))
        .unwrap();
    assert_eq!(ideal.link_bytes, 0.0);
    let nv = s
        .evaluate(&EvalQuery::new(
            &l,
            Pass::Wgrad,
            fleet(4, InterconnectKind::NvLink),
        ))
        .unwrap();
    let halo_only = s
        .evaluate(&EvalQuery::forward(
            &delta_model::training::wgrad_layer(&l).unwrap(),
            fleet(4, InterconnectKind::NvLink),
        ))
        .unwrap();
    let ring = 2.0 * 3.0 * l.filter_bytes() as f64;
    assert!(
        (nv.link_bytes - halo_only.link_bytes - ring).abs() < 1e-6,
        "wgrad link {} = halo {} + ring {ring}",
        nv.link_bytes,
        halo_only.link_bytes
    );
    assert!(nv.seconds > halo_only.seconds);
}
