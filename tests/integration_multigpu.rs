//! Cross-crate integration of the multi-GPU subsystem: the
//! `--gpus G --interconnect I` path from `SimConfig` through `Backend`
//! and `Engine`.
//!
//! Two acceptance contracts are pinned here (mirroring the CI perf
//! gate):
//!
//! 1. under the zero-cost `ideal` interconnect, a G-device evaluation is
//!    **byte-identical** (down to the serialized JSON) for every G — the
//!    device partition inherits the shard layer's merge identity, so the
//!    interconnect model is the only permitted source of divergence;
//! 2. a non-ideal interconnect **strictly increases** the reported
//!    DRAM+link traffic and time for G > 1, and never perturbs the
//!    on-device measurements.

use delta_model::engine::Engine;
use delta_model::{Backend, ConvLayer, GpuSpec};
use delta_sim::{InterconnectKind, SimConfig, Simulator};

fn config(kind: InterconnectKind) -> SimConfig {
    SimConfig {
        interconnect: kind,
        ..SimConfig::default()
    }
}

fn sim(kind: InterconnectKind) -> Simulator {
    Simulator::new(GpuSpec::titan_xp(), config(kind))
}

/// A 16-column conv layer so 4 devices all own real work.
fn wide_layer() -> ConvLayer {
    ConvLayer::builder("conv5_1x1")
        .batch(4)
        .input(512, 7, 7)
        .output_channels(2048)
        .filter(1, 1)
        .build()
        .unwrap()
}

#[test]
fn ideal_network_json_is_byte_identical_for_1_2_4_devices() {
    // The acceptance criterion behind `delta network --backend sim
    // --gpus G --interconnect ideal --json`: the engine-level evaluation
    // serializes to exactly the same bytes for G in {1, 2, 4}.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let reference = Engine::new(sim(InterconnectKind::Ideal))
        .evaluate_network_multi(net.layers(), 1)
        .expect("simulable network");
    let reference_json = serde_json::to_string_pretty(&reference).unwrap();
    for g in [2, 4] {
        let eval = Engine::new(sim(InterconnectKind::Ideal))
            .evaluate_network_multi(net.layers(), g)
            .expect("simulable network");
        assert_eq!(
            serde_json::to_string_pretty(&eval).unwrap(),
            reference_json,
            "devices={g}"
        );
    }
}

#[test]
fn ideal_multi_estimate_equals_single_device_sharded_estimate() {
    // The layer-level identity: G devices under ideal == the
    // single-device sharded run, bitwise, through the Backend trait.
    let l = wide_layer();
    let s = sim(InterconnectKind::Ideal);
    let sharded = Backend::estimate_layer_sharded(&s, &l, 1).unwrap();
    for g in [1, 2, 4] {
        let multi = Backend::estimate_layer_multi(&s, &l, g).unwrap();
        assert_eq!(multi, sharded, "devices={g}");
        assert_eq!(multi.link_bytes, 0.0, "devices={g}");
    }
}

#[test]
fn nonideal_interconnect_strictly_increases_offchip_traffic_and_time() {
    let l = wide_layer();
    let ideal = Backend::estimate_layer_multi(&sim(InterconnectKind::Ideal), &l, 4).unwrap();
    for kind in [InterconnectKind::NvLink, InterconnectKind::Pcie] {
        for g in [2u32, 4] {
            let est = Backend::estimate_layer_multi(&sim(kind), &l, g).unwrap();
            assert!(est.link_bytes > 0.0, "{kind} devices={g}");
            assert!(
                est.dram_and_link_bytes() > ideal.dram_and_link_bytes(),
                "{kind} devices={g}: {} <= {}",
                est.dram_and_link_bytes(),
                ideal.dram_and_link_bytes()
            );
            assert!(est.seconds > ideal.seconds, "{kind} devices={g}");
            assert!(est.cycles > ideal.cycles, "{kind} devices={g}");
            // On-device measurements are untouched: the interconnect is
            // the only source of divergence.
            assert_eq!(est.l1_bytes, ideal.l1_bytes, "{kind} devices={g}");
            assert_eq!(est.l2_bytes, ideal.l2_bytes, "{kind} devices={g}");
            assert_eq!(est.dram_read_bytes, ideal.dram_read_bytes);
            assert_eq!(est.dram_write_bytes, ideal.dram_write_bytes);
        }
        // One device never crosses a link, whatever the fabric.
        let single = Backend::estimate_layer_multi(&sim(kind), &l, 1).unwrap();
        assert_eq!(single.link_bytes, 0.0, "{kind}");
        assert_eq!(single.seconds, ideal.seconds, "{kind}");
    }
}

#[test]
fn training_step_all_reduces_gradients_per_layer() {
    // The data-parallel view: wgrad passes gain ring-all-reduce link
    // traffic on a non-ideal interconnect; forward/dgrad only the halo.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let ideal = Engine::new(sim(InterconnectKind::Ideal))
        .evaluate_training_step_multi(net.layers(), 4)
        .unwrap();
    let nvlink = Engine::new(sim(InterconnectKind::NvLink))
        .evaluate_training_step_multi(net.layers(), 4)
        .unwrap();
    for (i, (r0, r1)) in ideal.rows.iter().zip(&nvlink.rows).enumerate() {
        assert_eq!(
            r0.wgrad.link_bytes, 0.0,
            "row {i}: ideal all-reduce is free"
        );
        // 2 (G-1) x |gradient| on a ring of 4, topology factor 1.
        let expected = 2.0 * 3.0 * net.layers()[i].filter_bytes() as f64;
        assert!(
            r1.wgrad.link_bytes >= expected,
            "row {i}: {} < {expected}",
            r1.wgrad.link_bytes
        );
        assert!(r1.wgrad.seconds > r0.wgrad.seconds, "row {i}");
    }
    let total_link: f64 = nvlink
        .rows
        .iter()
        .map(|r| {
            r.forward.link_bytes
                + r.dgrad.as_ref().map_or(0.0, |d| d.link_bytes)
                + r.wgrad.link_bytes
        })
        .sum();
    assert!(total_link > 0.0);
}

#[test]
fn engine_caches_each_device_count_separately() {
    let l = wide_layer();
    let engine = Engine::new(sim(InterconnectKind::NvLink));
    let two = engine.evaluate_layer_multi(&l, 2).unwrap();
    let four = engine.evaluate_layer_multi(&l, 4).unwrap();
    assert_eq!(
        engine.cache_stats().misses,
        2,
        "distinct (shape, devices) keys"
    );
    // More active devices refetch more halo: the cached entries really
    // are different quantities.
    assert!(four.link_bytes > two.link_bytes);
    // Repeats are hits, bitwise equal.
    assert_eq!(engine.evaluate_layer_multi(&l, 2).unwrap(), two);
    assert_eq!(engine.evaluate_layer_multi(&l, 4).unwrap(), four);
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 2);
    // The single-device default path is yet another key.
    engine.evaluate_layer(&l).unwrap();
    assert_eq!(engine.cache_stats().misses, 3);
}

#[test]
fn multi_gpu_estimates_survive_the_persistent_cache() {
    // --cache-file end to end: multi-device entries round-trip with
    // their device key intact.
    let dir = std::env::temp_dir().join("delta_multigpu_cache_test");
    let path = dir.join("cache.json");
    let l = wide_layer();

    let engine = Engine::new(sim(InterconnectKind::Pcie));
    let four = engine.evaluate_layer_multi(&l, 4).unwrap();
    let plain = engine.evaluate_layer(&l).unwrap();
    assert_eq!(engine.save_cache(&path).unwrap(), 2);

    let fresh = Engine::new(sim(InterconnectKind::Pcie));
    fresh.load_cache(&path).unwrap();
    assert_eq!(fresh.evaluate_layer_multi(&l, 4).unwrap(), four);
    assert_eq!(fresh.evaluate_layer(&l).unwrap(), plain);
    assert_eq!(fresh.cache_stats().misses, 0, "both served from the file");
    // An unseen device count still reaches the backend.
    fresh.evaluate_layer_multi(&l, 2).unwrap();
    assert_eq!(fresh.cache_stats().misses, 1);

    // A different simulator configuration (another interconnect, or
    // different sampling limits) refuses the file instead of silently
    // replaying estimates computed under the old pricing.
    let other = Engine::new(sim(InterconnectKind::NvLink));
    let err = other.load_cache(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("configuration"), "{err}");
    let exhaustive = Engine::new(Simulator::new(
        GpuSpec::titan_xp(),
        SimConfig {
            interconnect: InterconnectKind::Pcie,
            ..SimConfig::exhaustive()
        },
    ));
    assert!(exhaustive.load_cache(&path).is_err());
}
