//! Cross-crate checks of the prior-work baselines against both DeLTA and
//! the simulator: the Fig. 12 / Fig. 15b orderings.

use delta_baselines::{FixedMissRateModel, ThroughputRoofline};
use delta_model::{Delta, GpuSpec};
use delta_networks::googlenet;
use delta_sim::{SimConfig, Simulator};

#[test]
fn traffic_ordering_prior_ge_delta_and_both_bracket_measured() {
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let prior = FixedMissRateModel::prior_methodology(gpu.clone());
    let sim = Simulator::new(gpu, SimConfig::default());
    let net = googlenet(8).unwrap();
    for label in ["3a_3x3", "3a_5x5", "4b_1x1"] {
        let layer = net.layer(label).unwrap();
        let d = delta.estimate_traffic(layer).unwrap();
        let p = prior.estimate_traffic(layer);
        let m = sim.run(layer);
        // Prior (100% miss) can never be below DeLTA's DRAM estimate.
        assert!(p.dram_bytes >= d.dram_bytes, "{label}");
        // And the measured value sits far below the prior methodology
        // for reuse-heavy filters.
        if !layer.is_pointwise() {
            assert!(
                p.dram_bytes > 5.0 * m.dram_read_bytes,
                "{label}: prior {:.3e} measured {:.3e}",
                p.dram_bytes,
                m.dram_read_bytes
            );
        }
    }
}

#[test]
fn delta_time_beats_all_fixed_mr_models_against_measurement() {
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let sim = Simulator::new(gpu.clone(), SimConfig::default());
    let net = googlenet(8).unwrap();
    let layers: Vec<_> = ["conv2_3x3", "3a_3x3", "4e_3x3"]
        .iter()
        .map(|l| net.layer(l).unwrap())
        .collect();

    let gmae = |ratios: &[f64]| -> f64 {
        (ratios.iter().map(|r| r.ln().abs()).sum::<f64>() / ratios.len() as f64).exp() - 1.0
    };
    let measured: Vec<f64> = layers.iter().map(|l| sim.run(l).cycles).collect();
    let delta_err = gmae(
        &layers
            .iter()
            .zip(&measured)
            .map(|(l, m)| delta.estimate_performance(l).unwrap().cycles / m)
            .collect::<Vec<_>>(),
    );
    for mr in FixedMissRateModel::fig15_sweep(&gpu) {
        let err = gmae(
            &layers
                .iter()
                .zip(&measured)
                .map(|(l, m)| mr.estimate_performance(l).cycles / m)
                .collect::<Vec<_>>(),
        );
        assert!(
            delta_err <= err * 1.2,
            "DeLTA GMAE {delta_err:.3} vs MR{:.1} GMAE {err:.3}",
            mr.miss_rate()
        );
    }
}

#[test]
fn roofline_brackets_delta_from_below() {
    let gpu = GpuSpec::titan_xp();
    let delta = Delta::new(gpu.clone());
    let roof = ThroughputRoofline::new(gpu);
    let net = googlenet(32).unwrap();
    for layer in net.layers() {
        let r = roof.estimate_performance(layer).seconds;
        let d = delta.estimate_performance(layer).unwrap().seconds;
        assert!(r <= d * 1.01, "{}: roofline {r} > delta {d}", layer.label());
    }
}
