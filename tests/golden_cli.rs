//! Golden byte-identity tests for the CLI.
//!
//! The files under `tests/golden/cli_*` were captured from the release
//! binary **before** the transformer workload axis landed. The
//! `LayerKind` field is designed to be invisible for conv workloads —
//! hand-written serialization omits the `kind` key on conv layers, the
//! fingerprints of conv queries are unchanged, and the simulator's conv
//! replay always runs the FFMA datapath — so every pre-existing CNN
//! command must still produce byte-identical output. A diff here means
//! the compatibility contract broke, not that the goldens need
//! refreshing.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_delta"))
        .args(args)
        .output()
        .expect("spawn delta");
    assert!(
        out.status.success(),
        "delta {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/");
    std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("missing golden file {name}: {e}"))
}

#[test]
fn network_alexnet_sim_bytes_unchanged() {
    let got = run(&[
        "network",
        "alexnet",
        "--backend",
        "sim",
        "--batch",
        "2",
        "--json",
    ]);
    assert_eq!(got, golden("cli_network_alexnet_sim_b2.json"));
}

#[test]
fn network_googlenet_model_bytes_unchanged() {
    let got = run(&["network", "googlenet", "--batch", "256", "--json"]);
    assert_eq!(got, golden("cli_network_googlenet_model_b256.json"));
}

#[test]
fn network_vgg16_sharded_sim_bytes_unchanged() {
    let got = run(&[
        "network",
        "vgg16",
        "--backend",
        "sim",
        "--batch",
        "2",
        "--shards",
        "4",
        "--json",
    ]);
    assert_eq!(got, golden("cli_network_vgg16_sim_shards4_b2.json"));
}

#[test]
fn train_alexnet_multi_gpu_overlap_bytes_unchanged() {
    let got = run(&[
        "train",
        "alexnet",
        "--backend",
        "sim",
        "--batch",
        "2",
        "--gpus",
        "2",
        "--topology",
        "ring",
        "--overlap",
        "on",
    ]);
    assert_eq!(
        got,
        golden("cli_train_alexnet_sim_gpus2_ring_overlap_b2.txt")
    );
}
