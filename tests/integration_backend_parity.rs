//! Backend-parity validation: the analytical model and the trace-driven
//! simulator, driven through the *same* `Backend` trait, must agree
//! within the paper's reported error character on every AlexNet layer —
//! the repository's equivalent of the paper's §VII-A per-network
//! validation, now expressed against the unified interface.
//!
//! Band rationale (Titan Xp, §VII-A/§VII-B):
//! * **L1** — the paper reports 13.5% GMAE using its profiled filter-MLI
//!   constants; a transaction-counting observer (this repo's simulator,
//!   like nvprof) needs `MliMode::Physical` for an apples-to-apples
//!   count, after which per-layer ratios sit near unity (±45% band).
//! * **L2** — paper GMAE 17.8%; per-layer band ±70%.
//! * **DRAM** — paper GMAE 2.8% *excluding capacity anomalies*; at the
//!   reduced test batch the anomaly analog (whole IFmap resident in L2)
//!   inflates individual layers, so the per-layer band is 2x and the
//!   aggregate GMAE must stay under 50%.
//! * **cycles** — the paper's exec-time validation (Fig. 13) shows
//!   per-layer deviations to ~35%; our loop-accurate timing runs within
//!   a 2x per-layer band (conv5's short loops are the worst case).

use delta_model::model::MliMode;
use delta_model::query::{EvalQuery, Parallelism};
use delta_model::{Backend, Delta, DeltaOptions, Engine, GpuSpec, LayerEstimate};
use delta_sim::{SimConfig, Simulator};

const BATCH: u32 = 8;

fn gmae(ratios: &[f64]) -> f64 {
    let mean_abs_log: f64 = ratios.iter().map(|r| r.ln().abs()).sum::<f64>() / ratios.len() as f64;
    mean_abs_log.exp() - 1.0
}

/// Evaluates every AlexNet layer through a `&dyn Backend` — the point of
/// the trait is that this function cannot know which estimator it holds.
fn alexnet_estimates(backend: &dyn Backend) -> Vec<(String, LayerEstimate)> {
    let net = delta_networks::alexnet(BATCH).unwrap();
    net.layers()
        .iter()
        .map(|l| {
            (
                l.label().to_string(),
                backend
                    .evaluate(&EvalQuery::forward(l, Parallelism::Single))
                    .expect("estimable layer"),
            )
        })
        .collect()
}

#[test]
fn model_and_sim_agree_within_paper_error_bands_on_alexnet() {
    let gpu = GpuSpec::titan_xp();
    // Physical filter-MLI so the model counts the same L1 transactions a
    // transaction-counting measurement does (DESIGN.md §5).
    let model = Delta::with_options(
        gpu.clone(),
        DeltaOptions {
            mli_mode: MliMode::Physical,
            ..Default::default()
        },
    );
    let sim = Simulator::new(gpu, SimConfig::exhaustive());

    let model_rows = alexnet_estimates(&model);
    let sim_rows = alexnet_estimates(&sim);
    assert_eq!(model_rows.len(), 5, "AlexNet has 5 unique conv layers");

    let mut dram_ratios = Vec::new();
    for ((label, m), (_, s)) in model_rows.iter().zip(&sim_rows) {
        let l1 = m.l1_bytes / s.l1_bytes;
        let l2 = m.l2_bytes / s.l2_bytes;
        let dram = m.dram_read_bytes / s.dram_read_bytes;
        let cyc = m.cycles / s.cycles;
        assert!((0.55..=1.45).contains(&l1), "{label}: L1 ratio {l1:.3}");
        assert!((0.3..=1.7).contains(&l2), "{label}: L2 ratio {l2:.3}");
        assert!((0.5..=2.0).contains(&dram), "{label}: DRAM ratio {dram:.3}");
        assert!((0.3..=2.0).contains(&cyc), "{label}: cycle ratio {cyc:.3}");
        dram_ratios.push(dram);
    }
    assert!(
        gmae(&dram_ratios) < 0.5,
        "DRAM GMAE {:.3} exceeds band",
        gmae(&dram_ratios)
    );
}

#[test]
fn engine_results_equal_direct_backend_calls_for_both_backends() {
    // The engine (parallel, cached) is a pure driver: fanning a backend
    // across cores must not change a single bit of any estimate.
    let gpu = GpuSpec::titan_xp();
    let net = delta_networks::alexnet(BATCH).unwrap();

    let model = Delta::new(gpu.clone());
    let engine_rows = Engine::new(model.clone())
        .evaluate_network(net.layers(), &Parallelism::Single)
        .unwrap();
    for (row, layer) in engine_rows.rows.iter().zip(net.layers()) {
        assert_eq!(
            row.estimate,
            model
                .evaluate(&EvalQuery::forward(layer, Parallelism::Single))
                .unwrap(),
            "{}",
            layer.label()
        );
    }

    let sim = Simulator::new(gpu, SimConfig::default());
    let engine_rows = Engine::new(sim.clone())
        .evaluate_network(net.layers(), &Parallelism::Single)
        .unwrap();
    for (row, layer) in engine_rows.rows.iter().zip(net.layers()) {
        assert_eq!(
            row.estimate,
            sim.evaluate(&EvalQuery::forward(layer, Parallelism::Single))
                .unwrap(),
            "{}",
            layer.label()
        );
    }
}

#[test]
fn backends_report_their_identity_through_the_trait() {
    let gpu = GpuSpec::titan_xp();
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(Delta::new(gpu.clone())),
        Box::new(Simulator::new(gpu, SimConfig::default())),
    ];
    let names: Vec<&str> = backends.iter().map(|b| b.name()).collect();
    assert_eq!(names, ["model", "sim"]);
    for b in &backends {
        assert_eq!(b.gpu().name(), "TITAN Xp");
    }
}

#[test]
fn both_backends_order_layers_identically_by_cost() {
    // What an architect uses the model for: even where absolute numbers
    // drift, the two estimators must rank AlexNet's layers the same way.
    let gpu = GpuSpec::titan_xp();
    let model_rows = alexnet_estimates(&Delta::new(gpu.clone()));
    let sim_rows = alexnet_estimates(&Simulator::new(gpu, SimConfig::default()));
    let rank = |rows: &[(String, LayerEstimate)]| -> Vec<String> {
        let mut v: Vec<(String, f64)> = rows.iter().map(|(l, e)| (l.clone(), e.cycles)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.into_iter().map(|(l, _)| l).collect()
    };
    let (m, s) = (rank(&model_rows), rank(&sim_rows));
    // The lightest layer must match exactly; the heaviest may swap with
    // a near-tie, so each ranking's top layer must sit in the other's
    // top two.
    assert_eq!(
        m.last(),
        s.last(),
        "lightest layer disagrees: {m:?} vs {s:?}"
    );
    assert!(
        s[..2].contains(&m[0]) && m[..2].contains(&s[0]),
        "heaviest layers diverge beyond a near-tie: {m:?} vs {s:?}"
    );
}
