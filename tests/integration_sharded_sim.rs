//! Cross-crate integration of the intra-layer sharding seam: the
//! `Parallelism::Sharded { workers }` query from the CLI's `--shards N`
//! through `Backend` and `Engine` must produce bitwise-identical
//! estimates for every worker count — the acceptance contract the CI
//! perf gate also enforces.

use delta_model::engine::Engine;
use delta_model::query::{EvalQuery, Parallelism};
use delta_model::{Backend, ConvLayer, GpuSpec};
use delta_sim::{SimConfig, Simulator};

fn sim() -> Simulator {
    Simulator::new(GpuSpec::titan_xp(), SimConfig::default())
}

fn sharded(l: &ConvLayer, workers: u32) -> EvalQuery {
    EvalQuery::forward(l, Parallelism::Sharded { workers })
}

/// A 16-column ResNet152-style conv layer — wide enough that 4 workers
/// all get columns.
fn wide_layer() -> ConvLayer {
    ConvLayer::builder("conv5_1x1")
        .batch(4)
        .input(512, 7, 7)
        .output_channels(2048)
        .filter(1, 1)
        .build()
        .unwrap()
}

#[test]
fn network_estimates_identical_for_shards_1_2_4() {
    // The end-to-end `delta network --backend sim --shards N` path: a
    // whole network through the engine with sharded queries.
    let net = delta_networks::alexnet(2).expect("builtin network");
    let reference = Engine::new(sim())
        .evaluate_network(net.layers(), &Parallelism::Sharded { workers: 1 })
        .expect("simulable network");
    assert_eq!(reference.rows.len(), net.len());
    for n in [2, 4] {
        let eval = Engine::new(sim())
            .evaluate_network(net.layers(), &Parallelism::Sharded { workers: n })
            .expect("simulable network");
        // LayerEstimate is PartialEq over raw f64 fields: bitwise equal
        // values (the labels — and only the labels — match too).
        for (a, b) in eval.rows.iter().zip(&reference.rows) {
            assert_eq!(a.estimate, b.estimate, "shards={n} layer {}", a.label);
        }
    }
}

#[test]
fn wide_layer_identical_across_worker_counts_via_backend() {
    let s = sim();
    let l = wide_layer();
    let one = s.evaluate(&sharded(&l, 1)).unwrap();
    for n in [2, 4, 16, 32] {
        assert_eq!(s.evaluate(&sharded(&l, n)).unwrap(), one, "n_workers={n}");
    }
}

#[test]
fn engine_sharded_queries_match_backend_and_config_dispatch() {
    let l = wide_layer();
    let engine = Engine::new(sim());
    let via_engine = engine.evaluate(&sharded(&l, 4)).unwrap();
    let direct = engine.backend().evaluate(&sharded(&l, 4)).unwrap();
    assert_eq!(via_engine, direct);
    // And the config-selected dispatch (`SimConfig::shards`, the direct
    // `Simulator::run` convenience) agrees with the query.
    let via_config = Simulator::new(
        GpuSpec::titan_xp(),
        SimConfig {
            shards: Some(4),
            ..SimConfig::default()
        },
    )
    .run(&l);
    assert_eq!(via_config.cycles, direct.cycles);
    assert_eq!(via_config.l1_bytes, direct.l1_bytes);
    assert_eq!(via_config.dram_write_bytes, direct.dram_write_bytes);
}

#[test]
fn sharded_and_single_queries_cache_apart() {
    // The simulator's sharded replay isolates tile columns, so it is a
    // *different quantity* from the sequential replay of the same shape.
    // The query fingerprint keys them apart: both cache, neither ever
    // answers the other.
    let l = wide_layer();
    let engine = Engine::new(sim());

    let sequential = engine
        .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
        .unwrap();
    assert_eq!(engine.cache_stats().misses, 1);

    let shd = engine.evaluate(&sharded(&l, 4)).unwrap();
    // Distinct quantities on this multi-column layer (the sharded replay
    // refetches the IFmap per column).
    assert!(
        shd.dram_read_bytes > sequential.dram_read_bytes,
        "sharded {} vs sequential {}",
        shd.dram_read_bytes,
        sequential.dram_read_bytes
    );
    // The sharded query ran the backend under its own key.
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 0);

    // The single-device entry is untouched: the next single query is a
    // hit that still returns the sequential numbers.
    let again = engine
        .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
        .unwrap();
    assert_eq!(again, sequential, "cache polluted by the sharded result");
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 1);

    // And the sharded entry now hits too — equal queries always hit.
    assert_eq!(engine.evaluate(&sharded(&l, 4)).unwrap(), shd);
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 2);
    // A different worker count is a different key (evaluated afresh,
    // identical value by the shard-identity contract).
    assert_eq!(engine.evaluate(&sharded(&l, 2)).unwrap(), shd);
    assert_eq!(engine.cache_stats().misses, 3);
}

#[test]
fn sharded_estimates_stay_in_band_of_sequential_sim() {
    // Sharding isolates tile columns (no cross-column L2 residency), a
    // deliberate semantic difference from the sequential replay that
    // matches the model's per-column refetch assumption (paper Eq. 10).
    // On a layer whose *simulated* working set overflows the L2, the
    // sequential replay already refetches per column, so sharding must
    // be a small effect. A 1x1 conv keeps K = 256 (all 32 main loops
    // simulated, nothing loop-extrapolated) while the 6.4 MB IFmap
    // streams through the 3 MB L2 every column.
    let l = ConvLayer::builder("pointwise_b32")
        .batch(32)
        .input(256, 14, 14)
        .output_channels(512)
        .filter(1, 1)
        .build()
        .unwrap();
    let s = sim();
    let seq = s
        .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
        .unwrap();
    let shd = s.evaluate(&sharded(&l, 4)).unwrap();
    for (a, b, what) in [
        (shd.l1_bytes, seq.l1_bytes, "l1"),
        (shd.l2_bytes, seq.l2_bytes, "l2"),
        (shd.dram_read_bytes, seq.dram_read_bytes, "dram"),
        (shd.cycles, seq.cycles, "cycles"),
    ] {
        let err = (a - b).abs() / b;
        assert!(
            err < 0.25,
            "{what}: sharded {a} vs sequential {b} ({err:.3})"
        );
    }
}

#[test]
fn sharded_dram_excess_is_bounded_by_per_column_refetch() {
    // The capacity-anomaly regime: the wide layer's IFmap *fits* in L2,
    // so the sequential replay reads it from DRAM once while the sharded
    // replay refetches it per column. The excess is physically bounded
    // by (columns − 1) × IFmap bytes — never more.
    let l = wide_layer();
    let s = sim();
    let columns = s.tiling(&l).cta_columns();
    assert!(columns >= 4);
    let seq = s
        .evaluate(&EvalQuery::forward(&l, Parallelism::Single))
        .unwrap();
    let shd = s.evaluate(&sharded(&l, 4)).unwrap();
    assert!(
        shd.dram_read_bytes >= seq.dram_read_bytes * 0.99,
        "losing residency cannot reduce DRAM traffic: {} < {}",
        shd.dram_read_bytes,
        seq.dram_read_bytes
    );
    let refetch_cap = (columns - 1) as f64 * l.ifmap_bytes() as f64;
    assert!(
        shd.dram_read_bytes <= seq.dram_read_bytes + refetch_cap * 1.1,
        "excess beyond per-column IFmap refetch: sharded {} vs sequential {} + cap {}",
        shd.dram_read_bytes,
        seq.dram_read_bytes,
        refetch_cap
    );
    // L1 traffic (requests) is residency-independent: identical streams.
    assert!((shd.l1_bytes - seq.l1_bytes).abs() / seq.l1_bytes < 0.05);
}
