//! Cross-crate integration of the intra-layer sharding seam: the
//! `--shards N` path from `SimConfig` through `Backend` and `Engine`
//! must produce bitwise-identical estimates for every worker count —
//! the acceptance contract the CI perf gate also enforces.

use delta_model::engine::Engine;
use delta_model::{Backend, ConvLayer, GpuSpec};
use delta_sim::{SimConfig, Simulator};

fn sharded_config(n: u32) -> SimConfig {
    SimConfig {
        shards: Some(n),
        ..SimConfig::default()
    }
}

/// A 16-column ResNet152-style conv layer — wide enough that 4 workers
/// all get columns.
fn wide_layer() -> ConvLayer {
    ConvLayer::builder("conv5_1x1")
        .batch(4)
        .input(512, 7, 7)
        .output_channels(2048)
        .filter(1, 1)
        .build()
        .unwrap()
}

#[test]
fn network_estimates_identical_for_shards_1_2_4() {
    // The end-to-end `delta network --backend sim --shards N` path: a
    // whole network through the engine with a sharded simulator backend.
    let gpu = GpuSpec::titan_xp();
    let net = delta_networks::alexnet(2).expect("builtin network");
    let reference = Engine::new(Simulator::new(gpu.clone(), sharded_config(1)))
        .evaluate_network(net.layers())
        .expect("simulable network");
    assert_eq!(reference.rows.len(), net.len());
    for n in [2, 4] {
        let eval = Engine::new(Simulator::new(gpu.clone(), sharded_config(n)))
            .evaluate_network(net.layers())
            .expect("simulable network");
        // LayerEstimate is PartialEq over raw f64 fields: bitwise equal.
        assert_eq!(eval.rows, reference.rows, "shards={n}");
    }
}

#[test]
fn wide_layer_identical_across_worker_counts_via_backend() {
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let l = wide_layer();
    let one = Backend::estimate_layer_sharded(&sim, &l, 1).unwrap();
    for n in [2, 4, 16, 32] {
        assert_eq!(
            Backend::estimate_layer_sharded(&sim, &l, n).unwrap(),
            one,
            "n_workers={n}"
        );
    }
}

#[test]
fn engine_sharded_entry_point_matches_backend() {
    let gpu = GpuSpec::titan_xp();
    let l = wide_layer();
    let engine = Engine::new(Simulator::new(gpu.clone(), SimConfig::default()));
    let via_engine = engine.evaluate_layer_sharded(&l, 4).unwrap();
    let direct = Backend::estimate_layer_sharded(engine.backend(), &l, 4).unwrap();
    assert_eq!(via_engine, direct);
    // And the config-selected dispatch agrees with the explicit call.
    let via_config = Simulator::new(gpu, sharded_config(4)).run(&l);
    assert_eq!(via_config.cycles, direct.cycles);
    assert_eq!(via_config.l1_bytes, direct.l1_bytes);
    assert_eq!(via_config.dram_write_bytes, direct.dram_write_bytes);
}

#[test]
fn sharded_evaluation_bypasses_and_never_pollutes_the_cache() {
    // The simulator's sharded replay isolates tile columns, so it is a
    // *different quantity* from the sequential replay of the same shape.
    // `Engine::evaluate_layer_sharded` must therefore (a) bypass the
    // shape cache and (b) leave it untouched, so a later cached
    // `evaluate_layer` still answers the sequential measurement.
    let l = wide_layer();
    let engine = Engine::new(Simulator::new(GpuSpec::titan_xp(), SimConfig::default()));

    let sequential = engine.evaluate_layer(&l).unwrap();
    assert_eq!(engine.cache_stats().misses, 1);

    let sharded = engine.evaluate_layer_sharded(&l, 4).unwrap();
    // Distinct quantities on this multi-column layer (the sharded replay
    // refetches the IFmap per column).
    assert!(
        sharded.dram_read_bytes > sequential.dram_read_bytes,
        "sharded {} vs sequential {}",
        sharded.dram_read_bytes,
        sequential.dram_read_bytes
    );
    // The sharded call ran the backend (a miss), not the cache.
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 0);

    // And it did not overwrite the cached sequential entry: the next
    // evaluate_layer is a hit that still returns the sequential numbers.
    let again = engine.evaluate_layer(&l).unwrap();
    assert_eq!(again, sequential, "cache polluted by the sharded result");
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits, 1);

    // Symmetrically, a repeated sharded call re-runs the backend.
    engine.evaluate_layer_sharded(&l, 4).unwrap();
    assert_eq!(engine.cache_stats().misses, 3);
}

#[test]
fn sharded_estimates_stay_in_band_of_sequential_sim() {
    // Sharding isolates tile columns (no cross-column L2 residency), a
    // deliberate semantic difference from the sequential replay that
    // matches the model's per-column refetch assumption (paper Eq. 10).
    // On a layer whose *simulated* working set overflows the L2, the
    // sequential replay already refetches per column, so sharding must
    // be a small effect. A 1x1 conv keeps K = 256 (all 32 main loops
    // simulated, nothing loop-extrapolated) while the 6.4 MB IFmap
    // streams through the 3 MB L2 every column.
    let l = ConvLayer::builder("pointwise_b32")
        .batch(32)
        .input(256, 14, 14)
        .output_channels(512)
        .filter(1, 1)
        .build()
        .unwrap();
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let seq = Backend::estimate_layer(&sim, &l).unwrap();
    let shd = Backend::estimate_layer_sharded(&sim, &l, 4).unwrap();
    for (a, b, what) in [
        (shd.l1_bytes, seq.l1_bytes, "l1"),
        (shd.l2_bytes, seq.l2_bytes, "l2"),
        (shd.dram_read_bytes, seq.dram_read_bytes, "dram"),
        (shd.cycles, seq.cycles, "cycles"),
    ] {
        let err = (a - b).abs() / b;
        assert!(
            err < 0.25,
            "{what}: sharded {a} vs sequential {b} ({err:.3})"
        );
    }
}

#[test]
fn sharded_dram_excess_is_bounded_by_per_column_refetch() {
    // The capacity-anomaly regime: the wide layer's IFmap *fits* in L2,
    // so the sequential replay reads it from DRAM once while the sharded
    // replay refetches it per column. The excess is physically bounded
    // by (columns − 1) × IFmap bytes — never more.
    let l = wide_layer();
    let sim = Simulator::new(GpuSpec::titan_xp(), SimConfig::default());
    let columns = sim.tiling(&l).cta_columns();
    assert!(columns >= 4);
    let seq = Backend::estimate_layer(&sim, &l).unwrap();
    let shd = Backend::estimate_layer_sharded(&sim, &l, 4).unwrap();
    assert!(
        shd.dram_read_bytes >= seq.dram_read_bytes * 0.99,
        "losing residency cannot reduce DRAM traffic: {} < {}",
        shd.dram_read_bytes,
        seq.dram_read_bytes
    );
    let refetch_cap = (columns - 1) as f64 * l.ifmap_bytes() as f64;
    assert!(
        shd.dram_read_bytes <= seq.dram_read_bytes + refetch_cap * 1.1,
        "excess beyond per-column IFmap refetch: sharded {} vs sequential {} + cap {}",
        shd.dram_read_bytes,
        seq.dram_read_bytes,
        refetch_cap
    );
    // L1 traffic (requests) is residency-independent: identical streams.
    assert!((shd.l1_bytes - seq.l1_bytes).abs() / seq.l1_bytes < 0.05);
}
